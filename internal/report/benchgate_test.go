package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBenchDir lays out a fake committed BENCH file in a temp dir.
func writeBenchDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	data := `{"results": [
		{"name": "replay_sorted", "mb_per_s": 16.4, "wall_s": 1.2},
		{"name": "replay_shuffled", "mb_per_s": 12.0, "note": "text"}
	]}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_replay.json"), []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestCheckBenchWithinBudget(t *testing.T) {
	dir := writeBenchDir(t)
	b := BenchBudget{Thresholds: []BenchThreshold{
		{File: "BENCH_replay.json", Bench: "replay_sorted", Metric: "mb_per_s", Min: 14},
		{File: "BENCH_replay.json", Bench: "replay_sorted", Metric: "wall_s", Max: 2},
		{File: "BENCH_replay.json", Bench: "replay_shuffled", Metric: "mb_per_s", Min: 10, Max: 20},
	}}
	if err := CheckBench(dir, b); err != nil {
		t.Errorf("all thresholds hold, got %v", err)
	}
}

func TestCheckBenchRegressionFails(t *testing.T) {
	dir := writeBenchDir(t)
	b := BenchBudget{Thresholds: []BenchThreshold{
		{File: "BENCH_replay.json", Bench: "replay_sorted", Metric: "mb_per_s", Min: 20},
		{File: "BENCH_replay.json", Bench: "replay_sorted", Metric: "wall_s", Max: 1},
	}}
	err := CheckBench(dir, b)
	if err == nil {
		t.Fatal("regressed metrics must fail the gate")
	}
	for _, want := range []string{"regressed below threshold", "exceeds threshold", "mb_per_s", "wall_s"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error missing %q:\n%v", want, err)
		}
	}
}

func TestCheckBenchMissingDataIsViolation(t *testing.T) {
	dir := writeBenchDir(t)
	cases := map[string]BenchThreshold{
		"missing file":   {File: "BENCH_gone.json", Bench: "x", Metric: "m", Min: 1},
		"missing bench":  {File: "BENCH_replay.json", Bench: "nope", Metric: "mb_per_s", Min: 1},
		"missing metric": {File: "BENCH_replay.json", Bench: "replay_sorted", Metric: "nope", Min: 1},
		"text metric":    {File: "BENCH_replay.json", Bench: "replay_shuffled", Metric: "note", Min: 1},
	}
	for name, th := range cases {
		if err := CheckBench(dir, BenchBudget{Thresholds: []BenchThreshold{th}}); err == nil {
			t.Errorf("%s: silently dropped data must fail the gate", name)
		}
	}
}

func TestLoadBenchBudgetValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := LoadBenchBudget(write("empty.json", `{"thresholds": []}`)); err == nil {
		t.Error("a budget with no thresholds gates nothing and must be rejected")
	}
	if _, err := LoadBenchBudget(write("nobound.json",
		`{"thresholds": [{"file": "f", "bench": "b", "metric": "m"}]}`)); err == nil {
		t.Error("a threshold with neither min nor max must be rejected")
	}
	if _, err := LoadBenchBudget(write("typo.json",
		`{"thresholds": [{"file": "f", "bench": "b", "metric": "m", "minn": 1}]}`)); err == nil {
		t.Error("unknown threshold fields must be rejected")
	}
	b, err := LoadBenchBudget(write("ok.json",
		`{"thresholds": [{"file": "f", "bench": "b", "metric": "m", "min": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Thresholds) != 1 || b.Thresholds[0].Min != 1 {
		t.Errorf("parsed budget %+v", b)
	}
}
