// Package report turns raw validation data (per-benchmark simulated vs
// measured CPI) into a typed, deterministic ValidationReport artifact:
// per board and per benchmark suite/category, Pearson correlation, RMSE,
// MAPE, the mean signed error with a Student-t confidence interval, a
// paired-test p-value against the hardware, and pass/fail against
// tolerances declared per board in an accuracy budget (see budget.go).
//
// The report is the continuously-enforced replacement for the historical
// ad-hoc per-category error lines: `racesim validate -report` renders it,
// the serve API exposes it at GET /v1/jobs/{id}/report, and CI gates on
// it so accuracy cannot drift silently across refactors. Every number in
// a report is guaranteed finite — undefined statistics (a single-sample
// correlation, a zero-variance p-value) degrade to documented neutral
// values instead of NaN, so the JSON form always marshals and diffs
// cleanly.
package report

import (
	"fmt"
	"math"
	"sort"

	"racesim/internal/stats"
)

// Version is the report schema version, bumped on incompatible changes.
const Version = 1

// Sample is one benchmark observation: the model's CPI next to the
// board's, the raw datum behind every report statistic.
type Sample struct {
	Bench    string  `json:"bench"`
	Category string  `json:"category"`
	SimCPI   float64 `json:"sim_cpi"`
	HWCPI    float64 `json:"hw_cpi"`
}

// Error returns the sample's signed relative CPI error ((sim-hw)/hw).
func (s Sample) Error() float64 { return (s.SimCPI - s.HWCPI) / s.HWCPI }

// Metrics are the accuracy statistics of one sample group.
//
// Degenerate groups keep every field finite: Correlation is 0 when fewer
// than two samples (or zero variance) make Pearson's r undefined, the
// confidence interval collapses to the mean for n < 2, and PValue is 1
// when the paired test cannot reject anything.
type Metrics struct {
	N int `json:"n"`
	// Correlation is Pearson's r between simulated and measured CPI.
	Correlation float64 `json:"correlation"`
	// RMSE is the root-mean-square CPI error (absolute, in CPI units).
	RMSE float64 `json:"rmse"`
	// MAPE is the mean absolute percentage CPI error, as a fraction
	// (0.031 = 3.1%) — the same metric validate.MeanError reports.
	MAPE float64 `json:"mape"`
	// MeanError is the mean signed relative error (the model's bias);
	// CILo/CIHi bound it with a 95% Student-t confidence interval.
	MeanError float64 `json:"mean_error"`
	CILo      float64 `json:"ci_lo"`
	CIHi      float64 `json:"ci_hi"`
	// PValue is the two-sided paired t-test p-value of sim vs hardware
	// CPI: small values mean the model differs systematically from the
	// board beyond what per-benchmark scatter explains.
	PValue float64 `json:"p_value"`
	// MaxAbsError/WorstBench locate the worst single benchmark.
	MaxAbsError float64 `json:"max_abs_error"`
	WorstBench  string  `json:"worst_bench"`
}

// confidence is the two-sided confidence level of the mean-error CI.
const confidence = 0.95

// finite replaces NaN/Inf with a neutral fallback, keeping every report
// field marshalable and diffable.
func finite(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fallback
	}
	return v
}

// Compute derives the metrics of one sample group. Samples with a
// non-positive hardware CPI are rejected: a relative error against them
// is undefined and must surface as an error, not as NaN in a report.
func Compute(samples []Sample) (Metrics, error) {
	m := Metrics{N: len(samples), PValue: 1}
	if len(samples) == 0 {
		return m, nil
	}
	sim := make([]float64, len(samples))
	hw := make([]float64, len(samples))
	errs := make([]float64, len(samples))
	for i, s := range samples {
		if !(s.HWCPI > 0) || math.IsInf(s.HWCPI, 0) {
			return Metrics{}, fmt.Errorf("report: %s: hardware CPI %v is not positive and finite", s.Bench, s.HWCPI)
		}
		if math.IsNaN(s.SimCPI) || math.IsInf(s.SimCPI, 0) {
			return Metrics{}, fmt.Errorf("report: %s: simulated CPI %v is not finite", s.Bench, s.SimCPI)
		}
		sim[i] = s.SimCPI
		hw[i] = s.HWCPI
		errs[i] = s.Error()
		if abs := math.Abs(errs[i]); abs > m.MaxAbsError || m.WorstBench == "" {
			// Strict > means ties resolve to the earliest sample; suite
			// order is fixed, so the winner is deterministic either way.
			m.MaxAbsError, m.WorstBench = abs, s.Bench
		}
		m.RMSE += (sim[i] - hw[i]) * (sim[i] - hw[i])
		m.MAPE += math.Abs(errs[i])
	}
	n := float64(len(samples))
	m.RMSE = math.Sqrt(m.RMSE / n)
	m.MAPE /= n
	m.Correlation = finite(pearson(sim, hw), 0)
	m.MeanError = stats.Mean(errs)
	m.CILo, m.CIHi = m.MeanError, m.MeanError
	if len(errs) >= 2 {
		sd := stats.StdDev(errs)
		t := stats.TQuantile(1-(1-confidence)/2, len(errs)-1)
		half := finite(t*sd/math.Sqrt(n), 0)
		m.CILo, m.CIHi = m.MeanError-half, m.MeanError+half
		if _, p, err := stats.PairedT(sim, hw); err == nil {
			m.PValue = finite(p, 1)
		}
	}
	return m, nil
}

// pearson returns Pearson's correlation coefficient (NaN when undefined).
func pearson(x, y []float64) float64 {
	if len(x) < 2 {
		return math.NaN()
	}
	mx, my := stats.Mean(x), stats.Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Group is the report of one sample group — the whole suite or one
// benchmark category — with its budget verdict.
type Group struct {
	// Name is "suite" for the all-benchmarks group, else the category.
	Name string `json:"name"`
	Metrics
	Pass bool `json:"pass"`
	// Violations lists each tolerance the group breaks, human-readable.
	Violations []string `json:"violations,omitempty"`
}

// BoardReport is the full accuracy report of one board (one core of the
// reference platform) for one validated model configuration.
type BoardReport struct {
	Board string `json:"board"`
	Core  string `json:"core"`  // core kind: inorder | ooo
	Stage string `json:"stage"` // validation stage the config came from
	// Groups holds the suite group first, then one group per category in
	// the fixed presentation order the samples arrived in.
	Groups []Group `json:"groups"`
	// Samples are the raw per-benchmark observations, suite-ordered.
	Samples []Sample `json:"samples"`
	// Plausibility lists physical-invariant violations observed while
	// simulating the suite (empty for a physical model).
	Plausibility []string `json:"plausibility,omitempty"`
	Pass         bool     `json:"pass"`
}

// Build assembles one board's report: suite-level metrics, per-category
// metrics in first-appearance order, and pass/fail against the budget's
// tolerances for the board. plausibility lists invariant violations
// observed during simulation; any violation fails the board.
func Build(board, core, stage string, samples []Sample, plausibility []string, b Budget) (BoardReport, error) {
	if len(samples) == 0 {
		return BoardReport{}, fmt.Errorf("report: board %s has no samples", board)
	}
	br := BoardReport{
		Board:        board,
		Core:         core,
		Stage:        stage,
		Samples:      append([]Sample(nil), samples...),
		Plausibility: append([]string(nil), plausibility...),
		Pass:         true,
	}
	bb := b.Boards[board]

	suite, err := Compute(samples)
	if err != nil {
		return BoardReport{}, err
	}
	br.Groups = append(br.Groups, makeGroup("suite", suite, bb.Suite))

	var cats []string
	byCat := map[string][]Sample{}
	for _, s := range samples {
		if _, seen := byCat[s.Category]; !seen {
			cats = append(cats, s.Category)
		}
		byCat[s.Category] = append(byCat[s.Category], s)
	}
	for _, cat := range cats {
		cm, err := Compute(byCat[cat])
		if err != nil {
			return BoardReport{}, err
		}
		br.Groups = append(br.Groups, makeGroup(cat, cm, bb.Categories[cat]))
	}
	for _, g := range br.Groups {
		if !g.Pass {
			br.Pass = false
		}
	}
	if len(br.Plausibility) > 0 {
		br.Pass = false
	}
	return br, nil
}

func makeGroup(name string, m Metrics, tol Tolerance) Group {
	v := tol.Check(m)
	return Group{Name: name, Metrics: m, Pass: len(v) == 0, Violations: v}
}

// ValidationReport is the top-level artifact: one entry per validated
// board, overall pass/fail, and the budget it was judged against.
type ValidationReport struct {
	Version int           `json:"version"`
	Boards  []BoardReport `json:"boards"`
	Pass    bool          `json:"pass"`
}

// New assembles a ValidationReport from board reports, sorted by board
// name for deterministic output regardless of evaluation order.
func New(boards ...BoardReport) ValidationReport {
	sorted := append([]BoardReport(nil), boards...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Board < sorted[j].Board })
	r := ValidationReport{Version: Version, Boards: sorted, Pass: true}
	for _, b := range sorted {
		if !b.Pass {
			r.Pass = false
		}
	}
	return r
}

// Err returns a gating error describing every failing group if the
// report violates its budget, else nil — the exit-status hook for the
// CI accuracy gate.
func (r ValidationReport) Err() error {
	if r.Pass {
		return nil
	}
	var parts []string
	for _, b := range r.Boards {
		for _, g := range b.Groups {
			for _, v := range g.Violations {
				parts = append(parts, fmt.Sprintf("%s/%s: %s", b.Board, g.Name, v))
			}
		}
		for _, p := range b.Plausibility {
			parts = append(parts, fmt.Sprintf("%s: plausibility: %s", b.Board, p))
		}
	}
	return fmt.Errorf("report: accuracy budget violated:\n  %s", joinLines(parts))
}

func joinLines(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "\n  "
		}
		out += p
	}
	return out
}
