package chaos

import (
	"context"
	"strings"
	"testing"

	"racesim/internal/telemetry"
)

func TestRegisterMetricsReportsFiredFaults(t *testing.T) {
	// panic=2: the second JobFault call panics. The collectors must
	// track Counts() live.
	spec, err := Parse("seed=7,panic=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(spec)
	reg := telemetry.NewRegistry()
	RegisterMetrics(reg, inj)

	render := func() string {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if text := render(); !strings.Contains(text, `racesim_chaos_faults_total{kind="panics"} 0`) {
		t.Fatalf("pre-fault scrape missing zero panics series:\n%s", text)
	}

	fired := 0
	for i := 0; i < 4; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired++
				}
			}()
			inj.JobFault(context.Background())
		}()
	}
	if fired != 1 {
		t.Fatalf("panic=2 fired %d times, want once (on the second call)", fired)
	}
	text := render()
	if !strings.Contains(text, `racesim_chaos_faults_total{kind="panics"} 1`) {
		t.Errorf("scrape does not reflect fired panics:\n%s", text)
	}
	if err := telemetry.ValidatePrometheus(text); err != nil {
		t.Errorf("chaos exposition invalid: %v", err)
	}
}

func TestRegisterMetricsNilInjector(t *testing.T) {
	reg := telemetry.NewRegistry()
	RegisterMetrics(reg, nil) // must not panic; series read zero
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `racesim_chaos_faults_total{kind="dropped"} 0`) {
		t.Errorf("nil injector series missing:\n%s", b.String())
	}
}
