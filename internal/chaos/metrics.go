package chaos

import "racesim/internal/telemetry"

// RegisterMetrics exposes the injector's fired-fault counters on reg as
// racesim_chaos_faults_total{kind=...} — collectors over Counts(), so a
// /metrics scrape always shows the current tallies without the fault
// paths touching the registry. Safe to call with a nil injector (every
// series reads zero), so a serve role can register unconditionally.
func RegisterMetrics(reg *telemetry.Registry, inj *Injector) {
	if reg == nil {
		return
	}
	kinds := []struct {
		kind string
		get  func(Counts) int
	}{
		{"dropped", func(c Counts) int { return c.Dropped }},
		{"delayed", func(c Counts) int { return c.Delayed }},
		{"failed", func(c Counts) int { return c.Failed }},
		{"truncated", func(c Counts) int { return c.Truncated }},
		{"corrupted", func(c Counts) int { return c.Corrupted }},
		{"panics", func(c Counts) int { return c.Panics }},
		{"stalls", func(c Counts) int { return c.Stalls }},
		{"poisoned", func(c Counts) int { return c.Poisoned }},
	}
	for _, k := range kinds {
		get := k.get
		reg.CounterFunc("racesim_chaos_faults_total",
			"Injected faults that actually fired, by kind.",
			func() float64 { return float64(get(inj.Counts())) },
			telemetry.L("kind", k.kind))
	}
}
