package chaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// transport is the network attach point: an http.RoundTripper that
// injects faults around an inner transport per the seeded schedule.
type transport struct {
	inj   *Injector
	inner http.RoundTripper
}

// Transport wraps an http.RoundTripper (nil = http.DefaultTransport)
// with the injector's network faults. A nil injector returns inner
// unchanged.
func (i *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if i == nil {
		return inner
	}
	return &transport{inj: i, inner: inner}
}

// DropError is the transport error of an injected drop, so tests and
// logs can tell injected faults from real network failures.
type DropError struct{ Path string }

func (e *DropError) Error() string {
	return fmt.Sprintf("chaos: injected drop of %s", e.Path)
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := t.inj
	s := i.spec

	// Request-side faults first: a dropped request never reaches the
	// server (closing the body is the RoundTripper contract on error).
	if s.Drop > 0 && i.draw() < s.Drop {
		i.count(func(c *Counts) { c.Dropped++ })
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &DropError{Path: req.URL.Path}
	}
	if s.Delay > 0 && i.draw() < s.Delay {
		d := time.Duration(i.draw() * float64(s.DelayMax))
		i.count(func(c *Counts) { c.Delayed++ })
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	}

	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	// Response-side faults. A synthesized 5xx replaces the whole
	// response; truncation and corruption mutate the body bytes in ways
	// no JSON (or length-checked) consumer can mistake for the real
	// payload.
	if s.Fail > 0 && i.draw() < s.Fail {
		i.count(func(c *Counts) { c.Failed++ })
		resp.Body.Close()
		body := `{"error":"chaos: injected server failure"}`
		return &http.Response{
			Status:        "500 Internal Server Error (chaos)",
			StatusCode:    http.StatusInternalServerError,
			Proto:         resp.Proto,
			ProtoMajor:    resp.ProtoMajor,
			ProtoMinor:    resp.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	truncate := s.Truncate > 0 && i.draw() < s.Truncate
	corrupt := s.Corrupt > 0 && i.draw() < s.Corrupt
	if !truncate && !corrupt {
		return resp, nil
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if truncate && len(data) > 0 {
		i.count(func(c *Counts) { c.Truncated++ })
		data = data[:int(i.draw()*float64(len(data)))]
	}
	if corrupt && len(data) > 0 {
		// Zero a range: inside a JSON string the NUL is an invalid
		// control character, outside it an invalid token — either way the
		// consumer's decode fails instead of reading altered values.
		i.count(func(c *Counts) { c.Corrupted++ })
		from := int(i.draw() * float64(len(data)))
		to := from + 1 + int(i.draw()*16)
		if to > len(data) {
			to = len(data)
		}
		for k := from; k < to; k++ {
			data[k] = 0
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	resp.ContentLength = int64(len(data))
	resp.Header.Del("Content-Length")
	return resp, nil
}

func (i *Injector) count(f func(*Counts)) {
	i.mu.Lock()
	defer i.mu.Unlock()
	f(&i.counts)
}

// JobFault is the engine attach point, called once per job execution
// inside the engine's panic-recovery scope. On the PanicJob'th call it
// panics (exercising worker-pool recovery); on the StallJob'th call it
// stalls for StallFor or until ctx expires (exercising job deadlines).
// Safe on a nil injector.
func (i *Injector) JobFault(ctx context.Context) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	i.jobs++
	n := i.jobs
	doPanic := i.spec.PanicJob > 0 && n == i.spec.PanicJob
	doStall := i.spec.StallJob > 0 && n == i.spec.StallJob
	if doPanic {
		i.counts.Panics++
	}
	if doStall {
		i.counts.Stalls++
	}
	i.mu.Unlock()
	if doPanic {
		panic(fmt.Sprintf("chaos: injected panic in job %d", n))
	}
	if doStall {
		select {
		case <-time.After(i.spec.StallFor):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// MutateSnapshot is the cache-delta attach point: on the PoisonDelta'th
// call it corrupts the snapshot bytes via poison (supplied by the cache
// layer, which owns the format), so the receiving side must prove its
// checksum rejection. Other calls pass data through untouched. Safe on a
// nil injector.
func (i *Injector) MutateSnapshot(data []byte, poison func([]byte) ([]byte, error)) []byte {
	if i == nil {
		return data
	}
	i.mu.Lock()
	i.deltas++
	doPoison := i.spec.PoisonDelta > 0 && i.deltas == i.spec.PoisonDelta
	i.mu.Unlock()
	if !doPoison {
		return data
	}
	bad, err := poison(data)
	if err != nil {
		// An unpoisonable snapshot (e.g. zero entries) is passed through;
		// the counter only moves when a fault actually fired.
		return data
	}
	i.count(func(c *Counts) { c.Poisoned++ })
	return bad
}
