// Package chaos is a deterministic, seed-driven fault injector for the
// distributed sweep fabric. It exists to make the byte-identical-assembly
// guarantee testable under realistic failure, not just under the happy
// path: CI runs the full coordinator/worker smoke with an Injector armed
// and diffs the assembled artifact against a fault-free run.
//
// One Injector carries one parsed Spec and attaches at two points:
//
//   - the network: Transport wraps an http.RoundTripper and, per a seeded
//     schedule, drops requests, delays them, fails them with a synthesized
//     5xx, or truncates/corrupts the response body. Corruption always
//     zeroes a byte range, which can never survive JSON decoding
//     undetected — an injected fault is guaranteed to surface as an error
//     at the client, never as silently altered payload bytes;
//   - the engine: JobFault fires on job execution (panic on the Nth job,
//     stall the Nth job past its deadline) and MutateSnapshot poisons one
//     entry of the Nth exported cache delta so the receiving side must
//     prove its checksum verification.
//
// Every probabilistic decision draws from one mutex-guarded rand.Rand
// seeded by Spec.Seed, so a single-threaded request sequence replays the
// same fault schedule; counted faults (panic/stall/poison) are exact
// regardless of concurrency.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Spec declares what an Injector does. The zero value injects nothing.
type Spec struct {
	// Seed drives the probabilistic schedule (drop/delay/fail/truncate/
	// corrupt draws). Two injectors with equal specs make identical
	// decisions for identical call sequences.
	Seed int64
	// Drop is the probability a request never reaches the server (the
	// round trip fails with a transport error).
	Drop float64
	// Delay is the probability a request is held up to DelayMax before
	// being forwarded.
	Delay float64
	// DelayMax bounds an injected delay (default 100ms).
	DelayMax time.Duration
	// Fail is the probability a response is replaced by a synthesized
	// 500 with an identifiable body.
	Fail float64
	// Truncate is the probability a response body is cut short.
	Truncate float64
	// Corrupt is the probability a range of response body bytes is
	// zeroed (detectably: a zeroed range can never re-parse as JSON).
	Corrupt float64
	// PanicJob makes the Nth JobFault call panic (1-based; 0 = never).
	PanicJob int
	// StallJob makes the Nth JobFault call stall for StallFor or until
	// its context expires (1-based; 0 = never).
	StallJob int
	// StallFor is the injected stall duration (default 30s).
	StallFor time.Duration
	// PoisonDelta corrupts one entry checksum in the Nth MutateSnapshot
	// call (1-based; 0 = never).
	PoisonDelta int
}

// Parse reads the -chaos flag syntax: comma-separated key=value pairs,
//
//	seed=7,drop=0.05,delay=0.1,delaymax=200ms,fail=0.02,
//	truncate=0.02,corrupt=0.02,panic=1,stall=2,stallfor=5s,poison=1
//
// Probabilities are in [0,1]; counts are 1-based ("panic=1" = the first
// job panics). Unknown keys are errors so a typo'd fault silently
// injecting nothing cannot pass for a passing chaos run.
func Parse(s string) (Spec, error) {
	spec := Spec{}
	if strings.TrimSpace(s) == "" {
		return spec, fmt.Errorf("chaos: empty spec")
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("chaos: %q: want key=value", kv)
		}
		var err error
		switch k {
		case "seed":
			spec.Seed, err = strconv.ParseInt(v, 10, 64)
		case "drop":
			spec.Drop, err = parseProb(k, v)
		case "delay":
			spec.Delay, err = parseProb(k, v)
		case "delaymax":
			spec.DelayMax, err = time.ParseDuration(v)
		case "fail":
			spec.Fail, err = parseProb(k, v)
		case "truncate":
			spec.Truncate, err = parseProb(k, v)
		case "corrupt":
			spec.Corrupt, err = parseProb(k, v)
		case "panic":
			spec.PanicJob, err = parseCount(k, v)
		case "stall":
			spec.StallJob, err = parseCount(k, v)
		case "stallfor":
			spec.StallFor, err = time.ParseDuration(v)
		case "poison":
			spec.PoisonDelta, err = parseCount(k, v)
		default:
			return spec, fmt.Errorf("chaos: unknown key %q (want seed, drop, delay, delaymax, fail, truncate, corrupt, panic, stall, stallfor, poison)", k)
		}
		if err != nil {
			return spec, fmt.Errorf("chaos: %s=%s: %v", k, v, err)
		}
	}
	return spec, nil
}

func parseProb(k, v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0,1]", p)
	}
	return p, nil
}

func parseCount(k, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("count %d is negative", n)
	}
	return n, nil
}

// String renders the spec in Parse's syntax (only non-zero fields).
func (s Spec) String() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	add("seed", strconv.FormatInt(s.Seed, 10))
	if s.Drop > 0 {
		add("drop", strconv.FormatFloat(s.Drop, 'g', -1, 64))
	}
	if s.Delay > 0 {
		add("delay", strconv.FormatFloat(s.Delay, 'g', -1, 64))
	}
	if s.DelayMax > 0 {
		add("delaymax", s.DelayMax.String())
	}
	if s.Fail > 0 {
		add("fail", strconv.FormatFloat(s.Fail, 'g', -1, 64))
	}
	if s.Truncate > 0 {
		add("truncate", strconv.FormatFloat(s.Truncate, 'g', -1, 64))
	}
	if s.Corrupt > 0 {
		add("corrupt", strconv.FormatFloat(s.Corrupt, 'g', -1, 64))
	}
	if s.PanicJob > 0 {
		add("panic", strconv.Itoa(s.PanicJob))
	}
	if s.StallJob > 0 {
		add("stall", strconv.Itoa(s.StallJob))
	}
	if s.StallFor > 0 {
		add("stallfor", s.StallFor.String())
	}
	if s.PoisonDelta > 0 {
		add("poison", strconv.Itoa(s.PoisonDelta))
	}
	return strings.Join(parts, ",")
}

// Counts reports how often each fault kind actually fired — what a chaos
// smoke asserts to prove the run was not accidentally fault-free.
type Counts struct {
	Dropped   int `json:"dropped"`
	Delayed   int `json:"delayed"`
	Failed    int `json:"failed"`
	Truncated int `json:"truncated"`
	Corrupted int `json:"corrupted"`
	Panics    int `json:"panics"`
	Stalls    int `json:"stalls"`
	Poisoned  int `json:"poisoned"`
}

func (c Counts) total() int {
	return c.Dropped + c.Delayed + c.Failed + c.Truncated + c.Corrupted +
		c.Panics + c.Stalls + c.Poisoned
}

// String renders the non-zero counters, "none" when nothing fired.
func (c Counts) String() string {
	type kv struct {
		k string
		n int
	}
	all := []kv{
		{"dropped", c.Dropped}, {"delayed", c.Delayed}, {"failed", c.Failed},
		{"truncated", c.Truncated}, {"corrupted", c.Corrupted},
		{"panics", c.Panics}, {"stalls", c.Stalls}, {"poisoned", c.Poisoned},
	}
	var parts []string
	for _, e := range all {
		if e.n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", e.n, e.k))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

// Injector executes one Spec. The zero Injector (and a nil *Injector)
// injects nothing, so callers thread "maybe chaos" without branching.
type Injector struct {
	spec Spec

	mu     sync.Mutex
	rng    *rand.Rand
	jobs   int // JobFault calls seen
	deltas int // MutateSnapshot calls seen
	counts Counts
}

// New builds an injector for a spec.
func New(spec Spec) *Injector {
	if spec.DelayMax <= 0 {
		spec.DelayMax = 100 * time.Millisecond
	}
	if spec.StallFor <= 0 {
		spec.StallFor = 30 * time.Second
	}
	return &Injector{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
}

// Spec returns the injector's parsed spec.
func (i *Injector) Spec() Spec {
	if i == nil {
		return Spec{}
	}
	return i.spec
}

// Counts snapshots the fault counters.
func (i *Injector) Counts() Counts {
	if i == nil {
		return Counts{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts
}

// draw returns a uniform [0,1) variate from the seeded stream.
func (i *Injector) draw() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Float64()
}
