package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseFullSpec(t *testing.T) {
	spec, err := Parse("seed=7,drop=0.05,delay=0.1,delaymax=200ms,fail=0.02,truncate=0.03,corrupt=0.04,panic=1,stall=2,stallfor=5s,poison=3")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 7, Drop: 0.05, Delay: 0.1, DelayMax: 200 * time.Millisecond,
		Fail: 0.02, Truncate: 0.03, Corrupt: 0.04,
		PanicJob: 1, StallJob: 2, StallFor: 5 * time.Second, PoisonDelta: 3,
	}
	if spec != want {
		t.Errorf("parsed %+v, want %+v", spec, want)
	}
	// String renders back to a spec Parse accepts with identical meaning.
	again, err := Parse(spec.String())
	if err != nil {
		t.Fatalf("String round-trip: %v", err)
	}
	if again != spec {
		t.Errorf("round-trip %+v != %+v", again, spec)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, s := range []string{
		"",                // empty spec injects nothing: refuse loudly
		"drop",            // no key=value
		"bogus=1",         // unknown key: a typo must not pass as chaos
		"drop=1.5",        // probability outside [0,1]
		"drop=-0.1",       // negative probability
		"panic=-1",        // negative count
		"seed=x",          // unparseable int
		"delaymax=fast",   // unparseable duration
		"drop=0.05,zap=1", // unknown key after valid pairs
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

// roundTrip pushes one GET through an injector-wrapped transport against
// a server answering a fixed JSON body, and classifies the outcome.
func roundTrip(t *testing.T, inj *Injector, ts *httptest.Server) string {
	t.Helper()
	client := &http.Client{Transport: inj.Transport(nil)}
	resp, err := client.Get(ts.URL + "/payload")
	if err != nil {
		return "transport-error"
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Sprintf("status-%d", resp.StatusCode)
	}
	var v struct {
		OK bool `json:"ok"`
	}
	if err := json.Unmarshal(data, &v); err != nil || !v.OK {
		return "bad-body"
	}
	return "ok"
}

func TestTransportScheduleIsDeterministic(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true,"pad":"` + strings.Repeat("x", 256) + `"}`))
	}))
	defer ts.Close()

	spec := Spec{Seed: 42, Drop: 0.2, Fail: 0.2, Truncate: 0.2, Corrupt: 0.2}
	run := func() ([]string, Counts) {
		inj := New(spec)
		var outcomes []string
		for i := 0; i < 60; i++ {
			outcomes = append(outcomes, roundTrip(t, inj, ts))
		}
		return outcomes, inj.Counts()
	}
	a, ca := run()
	b, cb := run()
	if ca != cb {
		t.Errorf("same seed, different counts: %+v vs %+v", ca, cb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("request %d: %s vs %s (seeded schedule must replay)", i, a[i], b[i])
		}
	}
	if ca.total() == 0 {
		t.Error("60 requests at 4x p=0.2 injected nothing; the injector is inert")
	}
	// Every non-ok outcome is a *detected* fault: an error, a 5xx, or a
	// body that fails decoding — never silently altered payload.
	var faults int
	for _, o := range a {
		if o != "ok" {
			faults++
		}
	}
	if faults == 0 {
		t.Error("no request-visible faults in 60 draws")
	}
}

func TestTransportDropIsIdentifiable(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	inj := New(Spec{Drop: 1}) // every request drops
	client := &http.Client{Transport: inj.Transport(nil)}
	_, err := client.Get(ts.URL)
	var de *DropError
	if err == nil || !errors.As(err, &de) {
		t.Fatalf("dropped request error = %v, want a *DropError", err)
	}
	if inj.Counts().Dropped != 1 {
		t.Errorf("counts: %+v, want 1 dropped", inj.Counts())
	}
}

func TestNilInjectorIsTransparent(t *testing.T) {
	var inj *Injector
	if rt := inj.Transport(nil); rt != http.DefaultTransport {
		t.Error("nil injector should return the inner transport unchanged")
	}
	if err := inj.JobFault(context.Background()); err != nil {
		t.Errorf("nil JobFault: %v", err)
	}
	data := []byte("payload")
	if got := inj.MutateSnapshot(data, nil); string(got) != "payload" {
		t.Errorf("nil MutateSnapshot altered data: %q", got)
	}
	if c := inj.Counts(); c != (Counts{}) {
		t.Errorf("nil injector counted faults: %+v", c)
	}
}

func TestJobFaultPanicsOnNthJob(t *testing.T) {
	inj := New(Spec{PanicJob: 2})
	if err := inj.JobFault(context.Background()); err != nil {
		t.Fatalf("job 1: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("job 2 did not panic")
			}
		}()
		inj.JobFault(context.Background())
	}()
	if err := inj.JobFault(context.Background()); err != nil {
		t.Fatalf("job 3: %v", err)
	}
	if c := inj.Counts(); c.Panics != 1 {
		t.Errorf("counts: %+v, want exactly 1 panic", c)
	}
}

func TestJobFaultStallRespectsContext(t *testing.T) {
	inj := New(Spec{StallJob: 1, StallFor: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.JobFault(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("stalled job error = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("stall outlived its context")
	}
	if c := inj.Counts(); c.Stalls != 1 {
		t.Errorf("counts: %+v, want 1 stall", c)
	}
}

func TestMutateSnapshotPoisonsExactlyNth(t *testing.T) {
	inj := New(Spec{PoisonDelta: 2})
	poison := func(data []byte) ([]byte, error) {
		return append([]byte("BAD:"), data...), nil
	}
	if got := inj.MutateSnapshot([]byte("a"), poison); string(got) != "a" {
		t.Errorf("delta 1 mutated: %q", got)
	}
	if got := inj.MutateSnapshot([]byte("b"), poison); string(got) != "BAD:b" {
		t.Errorf("delta 2 not poisoned: %q", got)
	}
	if got := inj.MutateSnapshot([]byte("c"), poison); string(got) != "c" {
		t.Errorf("delta 3 mutated: %q", got)
	}
	if c := inj.Counts(); c.Poisoned != 1 {
		t.Errorf("counts: %+v, want 1 poisoned", c)
	}
	// An unpoisonable snapshot passes through and the counter stays put.
	inj2 := New(Spec{PoisonDelta: 1})
	bad := func([]byte) ([]byte, error) { return nil, errors.New("nothing to poison") }
	if got := inj2.MutateSnapshot([]byte("x"), bad); string(got) != "x" {
		t.Errorf("unpoisonable snapshot altered: %q", got)
	}
	if c := inj2.Counts(); c.Poisoned != 0 {
		t.Errorf("unpoisonable snapshot counted: %+v", c)
	}
}
