// Package irace implements iterated racing for automatic configuration
// (Birattari et al., GECCO 2002; López-Ibáñez et al., ORP 2016) — the
// machine-learning tuner the paper uses to recover undisclosed simulator
// parameters from real-hardware measurements.
//
// The algorithm repeats three steps until the evaluation budget is spent:
// sample candidate configurations from per-parameter distributions biased
// toward the surviving elites, race the candidates across benchmark
// instances while eliminating statistically inferior ones (Friedman test
// with a post-hoc comparison to the incumbent), and update the sampling
// distributions from the survivors.
package irace

import (
	"fmt"
	"sort"
	"strings"
)

// Param is one tunable parameter with its finite candidate list. Ordered
// parameters (sizes, latencies) are sampled around the parent's value in
// index space; unordered ones (predictor kind, hash function) are sampled
// categorically.
type Param struct {
	Name    string
	Values  []string
	Ordered bool
}

// Space is the set of tunable parameters.
type Space struct {
	Params []Param
	byName map[string]int
}

// NewSpace builds a Space and validates it: at least one parameter, every
// parameter with at least one value, no duplicate names or values.
func NewSpace(params []Param) (*Space, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("irace: empty parameter space")
	}
	s := &Space{Params: params, byName: make(map[string]int, len(params))}
	for i, p := range params {
		if p.Name == "" {
			return nil, fmt.Errorf("irace: parameter %d has no name", i)
		}
		if _, dup := s.byName[p.Name]; dup {
			return nil, fmt.Errorf("irace: duplicate parameter %q", p.Name)
		}
		if len(p.Values) == 0 {
			return nil, fmt.Errorf("irace: parameter %q has no values", p.Name)
		}
		seen := map[string]bool{}
		for _, v := range p.Values {
			if seen[v] {
				return nil, fmt.Errorf("irace: parameter %q has duplicate value %q", p.Name, v)
			}
			seen[v] = true
		}
		s.byName[p.Name] = i
	}
	return s, nil
}

// Index returns the position of a named parameter, or -1.
func (s *Space) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Combinations returns the size of the full factorial space (saturating).
func (s *Space) Combinations() float64 {
	total := 1.0
	for _, p := range s.Params {
		total *= float64(len(p.Values))
	}
	return total
}

// Assignment maps parameter names to chosen values. Assignments returned
// by the tuner always bind every parameter in the space.
type Assignment map[string]string

// Key returns a canonical string for caching and comparison.
func (a Assignment) Key() string {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(a[n])
		b.WriteByte(';')
	}
	return b.String()
}

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	c := make(Assignment, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// valueIndex returns the index of the assigned value of p, or -1.
func valueIndex(p Param, a Assignment) int {
	v, ok := a[p.Name]
	if !ok {
		return -1
	}
	for i, cand := range p.Values {
		if cand == v {
			return i
		}
	}
	return -1
}

// Validate checks that the assignment binds every parameter to a known
// value.
func (s *Space) Validate(a Assignment) error {
	for _, p := range s.Params {
		if valueIndex(p, a) < 0 {
			return fmt.Errorf("irace: assignment has invalid value %q for %q", a[p.Name], p.Name)
		}
	}
	return nil
}
