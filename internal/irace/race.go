package irace

import (
	"math"
	"sort"

	"racesim/internal/stats"
)

// race evaluates candidates instance-by-instance, eliminating statistically
// inferior configurations after each step once FirstTest instances have
// been seen. It returns the survivors ordered best-first.
func (t *Tuner) race(iteration int, cands []*candidate) ([]*candidate, error) {
	alive := make([]*candidate, len(cands))
	copy(alive, cands)

	// Instance order is shuffled per iteration so early instances do not
	// dominate every race the same way.
	order := t.rng.Perm(t.eval.NumInstances())

	for step, inst := range order {
		if err := t.opt.ctxErr(); err != nil {
			return nil, err
		}
		// Stop once the next instance step no longer fits in the budget.
		// During the first FirstTest steps affordability is guaranteed by
		// the candidate trim in Run, so every candidate reaches the first
		// statistical test fully evaluated.
		if step >= t.opt.FirstTest && t.opt.Budget-t.used < t.pending(alive, inst) {
			break
		}
		t.evalBatch(alive, []int{inst})
		t.trace = append(t.trace, RaceEvent{Iteration: iteration, Instance: step + 1, Alive: len(alive)})

		if t.opt.DisableElimination {
			continue
		}
		if step+1 < t.opt.FirstTest || len(alive) <= t.opt.MinSurvivors {
			continue
		}
		seen := order[:step+1]
		matrix := make([][]float64, 0, len(seen))
		for _, i := range seen {
			row := make([]float64, len(alive))
			for j, c := range alive {
				row[j] = c.costs[i]
			}
			matrix = append(matrix, row)
		}
		fr, err := stats.Friedman(matrix, t.opt.Alpha)
		if err != nil {
			return nil, err
		}
		if fr.PValue >= t.opt.Alpha {
			continue
		}
		// Post hoc: drop candidates whose rank sum is worse than the best
		// by more than the critical difference.
		bestJ := 0
		for j := range fr.MeanRanks {
			if fr.MeanRanks[j] < fr.MeanRanks[bestJ] {
				bestJ = j
			}
		}
		n := float64(len(seen))
		var keep []*candidate
		for j, c := range alive {
			diff := (fr.MeanRanks[j] - fr.MeanRanks[bestJ]) * n
			if j == bestJ || diff <= fr.CriticalDiff {
				keep = append(keep, c)
			}
		}
		if len(keep) < t.opt.MinSurvivors {
			// The post-hoc test was sharper than the survivor floor:
			// keep the best MinSurvivors by mean rank instead.
			idx := make([]int, len(alive))
			for j := range idx {
				idx[j] = j
			}
			sort.Slice(idx, func(a, b int) bool {
				return fr.MeanRanks[idx[a]] < fr.MeanRanks[idx[b]]
			})
			keep = keep[:0]
			for _, j := range idx[:t.opt.MinSurvivors] {
				keep = append(keep, alive[j])
			}
		}
		alive = keep
		if len(alive) <= t.opt.MinSurvivors {
			// Keep racing the remaining few to refine their cost
			// estimates, but skip further statistical tests.
			continue
		}
	}

	sort.SliceStable(alive, func(a, b int) bool {
		return t.raceMean(alive[a]) < t.raceMean(alive[b])
	})
	return alive, nil
}

// raceMean is the mean over evaluated instances (used for final ordering).
func (t *Tuner) raceMean(c *candidate) float64 {
	sum, n := 0.0, 0
	for _, v := range c.costs {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}
