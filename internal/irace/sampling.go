package irace

import "math"

// sample draws a new configuration. With no elites it samples uniformly.
// With elites, it picks a parent (rank-weighted toward the best) and
// perturbs each parameter: ordered parameters take a discretized normal
// step around the parent's index whose spread shrinks as the run converges
// (frac in [0,1]); categorical parameters keep the parent's value with a
// probability that grows over the run, otherwise resample uniformly.
func (t *Tuner) sample(elites []*candidate, frac float64) Assignment {
	cfg := make(Assignment, len(t.space.Params))
	if len(elites) == 0 {
		for _, p := range t.space.Params {
			cfg[p.Name] = p.Values[t.rng.Intn(len(p.Values))]
		}
		return cfg
	}
	parent := t.pickParent(elites)
	// Spread decays geometrically from half the range to ~5% of it.
	spreadFrac := 0.5 * math.Pow(0.1, frac)
	keepProb := 0.5 + 0.45*frac
	for _, p := range t.space.Params {
		pi := valueIndex(p, parent.cfg)
		if pi < 0 {
			cfg[p.Name] = p.Values[t.rng.Intn(len(p.Values))]
			continue
		}
		if len(p.Values) == 1 {
			cfg[p.Name] = p.Values[0]
			continue
		}
		if p.Ordered {
			sd := spreadFrac * float64(len(p.Values)-1)
			if sd < 0.3 {
				sd = 0.3
			}
			step := int(math.Round(t.rng.NormFloat64() * sd))
			idx := pi + step
			if idx < 0 {
				idx = 0
			}
			if idx >= len(p.Values) {
				idx = len(p.Values) - 1
			}
			cfg[p.Name] = p.Values[idx]
		} else {
			if t.rng.Float64() < keepProb {
				cfg[p.Name] = p.Values[pi]
			} else {
				cfg[p.Name] = p.Values[t.rng.Intn(len(p.Values))]
			}
		}
	}
	return cfg
}

// pickParent selects an elite with probability proportional to
// (n - rank + 1), so the incumbent is sampled most often.
func (t *Tuner) pickParent(elites []*candidate) *candidate {
	n := len(elites)
	total := n * (n + 1) / 2
	r := t.rng.Intn(total)
	acc := 0
	for i, e := range elites {
		acc += n - i
		if r < acc {
			return e
		}
	}
	return elites[n-1]
}
