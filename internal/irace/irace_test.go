package irace

import (
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"testing"
)

// quadEval is a synthetic tuning problem: cost is the squared distance of
// the chosen values from a hidden optimum, plus per-instance noise-like
// variation (deterministic in instance index).
type quadEval struct {
	space     *Space
	optimum   map[string]int // target index per parameter
	instances int
	calls     atomic.Int64
}

func (e *quadEval) NumInstances() int { return e.instances }

func (e *quadEval) Cost(cfg Assignment, instance int) float64 {
	e.calls.Add(1)
	cost := 0.0
	for _, p := range e.space.Params {
		idx := valueIndex(p, cfg)
		d := float64(idx - e.optimum[p.Name])
		w := 1.0 + 0.3*math.Sin(float64(instance)*2.1+float64(len(p.Name)))
		cost += w * d * d
	}
	return cost
}

func ordinalParam(name string, n int) Param {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = strconv.Itoa(i)
	}
	return Param{Name: name, Values: vals, Ordered: true}
}

func testSpace(t *testing.T, nParams, nValues int) (*Space, *quadEval) {
	t.Helper()
	params := make([]Param, nParams)
	optimum := map[string]int{}
	for i := range params {
		params[i] = ordinalParam(fmt.Sprintf("p%02d", i), nValues)
		optimum[params[i].Name] = (i*3 + 1) % nValues
	}
	s, err := NewSpace(params)
	if err != nil {
		t.Fatal(err)
	}
	return s, &quadEval{space: s, optimum: optimum, instances: 12}
}

func TestSpaceValidation(t *testing.T) {
	if _, err := NewSpace(nil); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := NewSpace([]Param{{Name: "a"}}); err == nil {
		t.Error("valueless param accepted")
	}
	if _, err := NewSpace([]Param{{Name: "a", Values: []string{"1", "1"}}}); err == nil {
		t.Error("duplicate values accepted")
	}
	if _, err := NewSpace([]Param{
		{Name: "a", Values: []string{"1"}},
		{Name: "a", Values: []string{"2"}},
	}); err == nil {
		t.Error("duplicate names accepted")
	}
	s, err := NewSpace([]Param{{Name: "a", Values: []string{"x", "y"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(Assignment{"a": "x"}); err != nil {
		t.Error(err)
	}
	if err := s.Validate(Assignment{"a": "z"}); err == nil {
		t.Error("invalid value accepted")
	}
}

func TestAssignmentKeyCanonical(t *testing.T) {
	a := Assignment{"b": "2", "a": "1"}
	b := Assignment{"a": "1", "b": "2"}
	if a.Key() != b.Key() {
		t.Error("key not canonical")
	}
	c := a.Clone()
	c["a"] = "9"
	if a["a"] != "1" {
		t.Error("Clone did not copy")
	}
}

func TestTunerFindsOptimumSmallSpace(t *testing.T) {
	space, eval := testSpace(t, 4, 8)
	tuner, err := New(space, eval, Options{Budget: 1500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The optimum has cost 0; the tuner should land very close.
	if res.BestCost > 3.0 {
		t.Errorf("best cost %.3f, want near 0", res.BestCost)
	}
	// Check each parameter is within 1 step of the hidden optimum.
	for _, p := range space.Params {
		got := valueIndex(p, res.Best)
		want := eval.optimum[p.Name]
		if d := got - want; d < -1 || d > 1 {
			t.Errorf("param %s: index %d, optimum %d", p.Name, got, want)
		}
	}
}

func TestTunerRespectsBudget(t *testing.T) {
	space, eval := testSpace(t, 6, 6)
	tuner, err := New(space, eval, Options{Budget: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The budget is a hard cap: no generation-batch overshoot, no extra
	// finalization spend.
	if res.Evaluations > 400 {
		t.Errorf("used %d evaluations for budget 400", res.Evaluations)
	}
	if int(eval.calls.Load()) != res.Evaluations {
		t.Errorf("recorded %d evals but evaluator saw %d (cache mismatch)", res.Evaluations, eval.calls.Load())
	}
}

// TestEvaluationsNeverExceedBudget is the regression test for the batch
// overspend: race() used to check the budget only at the top of each
// instance step and then charge a whole generation×instance batch, so
// Evaluations could exceed Budget by O(candidates). The cap must now hold
// exactly, across seeds, budget sizes and parallelism, with the evaluator
// call count agreeing with the accounting.
func TestEvaluationsNeverExceedBudget(t *testing.T) {
	for _, budget := range []int{25, 60, 150, 400, 1000} {
		for seed := int64(0); seed < 6; seed++ {
			space, eval := testSpace(t, 5, 7)
			tuner, err := New(space, eval, Options{Budget: budget, Seed: seed, Parallelism: 3})
			if err != nil {
				t.Fatal(err)
			}
			res, err := tuner.Run()
			if err != nil {
				// Degenerate budgets may legitimately be too small to
				// race at all; they must fail, not overspend.
				if budget >= 2*5 { // 2 candidates × FirstTest default
					t.Errorf("budget %d seed %d: %v", budget, seed, err)
				}
				continue
			}
			if res.Evaluations > budget {
				t.Errorf("budget %d seed %d: used %d evaluations", budget, seed, res.Evaluations)
			}
			if got := int(eval.calls.Load()); got != res.Evaluations {
				t.Errorf("budget %d seed %d: recorded %d evals, evaluator saw %d",
					budget, seed, res.Evaluations, got)
			}
			if res.Best == nil {
				t.Errorf("budget %d seed %d: no best returned", budget, seed)
			}
		}
	}
}

// nanEval poisons one instance with NaN cost; the race must surface the
// Friedman NaN error instead of racing on an undefined rank permutation.
type nanEval struct {
	space     *Space
	instances int
}

func (e *nanEval) NumInstances() int { return e.instances }

func (e *nanEval) Cost(cfg Assignment, instance int) float64 {
	if instance == 3 {
		return math.NaN()
	}
	c := 0.0
	for _, p := range e.space.Params {
		idx := valueIndex(p, cfg)
		c += float64(idx * idx)
	}
	return c + float64(instance)
}

func TestNaNCostSurfacesAsError(t *testing.T) {
	space, _ := testSpace(t, 4, 6)
	tuner, err := New(space, &nanEval{space: space, instances: 12}, Options{Budget: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tuner.Run(); err == nil {
		t.Error("NaN cost did not surface as an error")
	}
}

func TestTunerBeatsRandomSearch(t *testing.T) {
	space, eval := testSpace(t, 8, 8)
	budget := 1200
	tuner, err := New(space, eval, Options{Budget: budget, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Run()
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomSearch(space, eval, Options{Budget: budget, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost > rnd.BestCost {
		t.Errorf("irace best %.3f worse than random search %.3f at equal budget", res.BestCost, rnd.BestCost)
	}
}

func TestRaceEliminationHappens(t *testing.T) {
	space, eval := testSpace(t, 5, 8)
	tuner, err := New(space, eval, Options{Budget: 1200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RaceTrace) == 0 {
		t.Fatal("no race trace recorded")
	}
	// Within some iteration, the alive count must shrink (elimination).
	shrank := false
	for i := 1; i < len(res.RaceTrace); i++ {
		a, b := res.RaceTrace[i-1], res.RaceTrace[i]
		if a.Iteration == b.Iteration && b.Alive < a.Alive {
			shrank = true
			break
		}
	}
	if !shrank {
		t.Error("no elimination observed in any race")
	}
}

func TestTunerDeterministicForSeed(t *testing.T) {
	space, eval := testSpace(t, 4, 6)
	run := func() *Result {
		tu, err := New(space, eval, Options{Budget: 600, Seed: 11, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		r, err := tu.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := run()
	// Fresh evaluator to reset the cache path.
	_, eval2 := testSpace(t, 4, 6)
	tu, _ := New(space, eval2, Options{Budget: 600, Seed: 11, Parallelism: 4})
	b, err := tu.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Key() != b.Best.Key() {
		t.Errorf("same seed, different best: %s vs %s", a.Best.Key(), b.Best.Key())
	}
}

func TestNewValidatesInputs(t *testing.T) {
	space, eval := testSpace(t, 3, 4)
	if _, err := New(nil, eval, Options{}); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := New(space, nil, Options{}); err == nil {
		t.Error("nil evaluator accepted")
	}
	one := &quadEval{space: space, optimum: map[string]int{}, instances: 1}
	if _, err := New(space, one, Options{}); err == nil {
		t.Error("single-instance evaluator accepted")
	}
}

func TestCategoricalParams(t *testing.T) {
	// Mix ordered and categorical parameters; optimum on specific values.
	params := []Param{
		{Name: "kind", Values: []string{"alpha", "beta", "gamma", "delta"}},
		ordinalParam("size", 10),
	}
	s, err := NewSpace(params)
	if err != nil {
		t.Fatal(err)
	}
	eval := &catEval{instances: 10}
	tu, err := New(s, eval, Options{Budget: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tu.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["kind"] != "gamma" {
		t.Errorf("best kind = %q, want gamma", res.Best["kind"])
	}
	if idx, _ := strconv.Atoi(res.Best["size"]); idx < 5 || idx > 9 {
		t.Errorf("best size = %v, want 7±2", res.Best["size"])
	}
}

type catEval struct{ instances int }

func (e *catEval) NumInstances() int { return e.instances }

func (e *catEval) Cost(cfg Assignment, instance int) float64 {
	c := 0.0
	if cfg["kind"] != "gamma" {
		c += 10
	}
	size, _ := strconv.Atoi(cfg["size"])
	d := float64(size - 7)
	return c + d*d + 0.1*float64(instance%3)
}

// batchQuadEval wraps quadEval with a CostBatch that scores through the
// same cost function, counting batch calls and verifying every batch
// targets a single instance.
type batchQuadEval struct {
	quadEval
	batchCalls atomic.Int64
}

func (e *batchQuadEval) CostBatch(cfgs []Assignment, instance int) []float64 {
	e.batchCalls.Add(1)
	out := make([]float64, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = e.Cost(cfg, instance)
	}
	return out
}

// TestBatchEvaluatorMatchesPerPair runs the same seeded tune through the
// per-pair path and the batched path: the results must be identical (the
// BatchEvaluator contract says batching is a throughput choice, never a
// semantic one), and the batched run must actually route through
// CostBatch.
func TestBatchEvaluatorMatchesPerPair(t *testing.T) {
	space, plain := testSpace(t, 4, 6)
	tuPlain, err := New(space, plain, Options{Budget: 600, Seed: 11, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := tuPlain.Run()
	if err != nil {
		t.Fatal(err)
	}

	_, fresh := testSpace(t, 4, 6)
	batch := &batchQuadEval{quadEval: quadEval{space: fresh.space, optimum: fresh.optimum, instances: fresh.instances}}
	tuBatch, err := New(space, batch, Options{Budget: 600, Seed: 11, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := tuBatch.Run()
	if err != nil {
		t.Fatal(err)
	}

	if a.Best.Key() != b.Best.Key() || a.BestCost != b.BestCost || a.Evaluations != b.Evaluations {
		t.Errorf("batched tune diverged from per-pair:\n per-pair best %s cost %v evals %d\n batched  best %s cost %v evals %d",
			a.Best.Key(), a.BestCost, a.Evaluations, b.Best.Key(), b.BestCost, b.Evaluations)
	}
	if batch.batchCalls.Load() == 0 {
		t.Error("BatchEvaluator was never routed through CostBatch")
	}
	if got, want := batch.calls.Load(), int64(b.Evaluations); got != want {
		t.Errorf("cost evaluations %d, want exactly %d (one per charged evaluation)", got, want)
	}
}
