package irace

import (
	"math"
	"math/rand"
)

// RandomSearch is the baseline tuner the paper's racing approach is
// measured against in the ablation benches: uniform configuration sampling
// with the same evaluation budget, each sampled configuration evaluated on
// every instance, no elimination and no distribution updates.
func RandomSearch(space *Space, eval Evaluator, opt Options) (*Result, error) {
	t, err := New(space, eval, opt)
	if err != nil {
		return nil, err
	}
	nInst := eval.NumInstances()
	nConfigs := t.opt.Budget / nInst
	if nConfigs < 1 {
		nConfigs = 1
	}
	res := &Result{BestCost: math.Inf(1)}
	all := make([]int, nInst)
	for i := range all {
		all[i] = i
	}
	seen := map[string]bool{}
	for i := 0; i < nConfigs; i++ {
		cfg := t.sample(nil, 0)
		key := cfg.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		c := t.candidateFor(cfg, key)
		t.evalBatch([]*candidate{c}, all)
		if m := t.meanCost(c); m < res.BestCost {
			res.BestCost = m
			res.Best = cfg.Clone()
		}
	}
	res.Evaluations = t.used
	return res, nil
}

// SampleUniform draws one uniform-random assignment from the space.
func SampleUniform(space *Space, rng *rand.Rand) Assignment {
	cfg := make(Assignment, len(space.Params))
	for _, p := range space.Params {
		cfg[p.Name] = p.Values[rng.Intn(len(p.Values))]
	}
	return cfg
}
