package irace

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Evaluator supplies the cost function: the performance-prediction error of
// a simulator configuration on one benchmark instance. Cost must be
// deterministic for a (configuration, instance) pair; the tuner caches and
// races on it. Implementations must be safe for concurrent calls.
type Evaluator interface {
	// Cost returns the error metric for cfg on instance (lower is
	// better).
	Cost(cfg Assignment, instance int) float64
	// NumInstances returns how many benchmark instances exist.
	NumInstances() int
}

// BatchEvaluator is an optional Evaluator extension: CostBatch scores many
// configurations on one instance in a single call, so an implementation
// backed by trace replay can batch the simulations into shared column
// walks (see sim.RunBatch). Element i of the result must be exactly what
// Cost(cfgs[i], instance) would return — batching is a throughput choice,
// never a semantic one — and the tuner's races and eliminations are
// unchanged by which path scored a pair.
type BatchEvaluator interface {
	Evaluator
	// CostBatch returns the error metric for each configuration on
	// instance, aligned with cfgs.
	CostBatch(cfgs []Assignment, instance int) []float64
}

// Options tunes the tuner itself. Zero values select defaults.
type Options struct {
	// Budget is the maximum number of (configuration, instance)
	// evaluations; the paper uses up to 100k trials.
	Budget int
	// FirstTest is how many instances are seen before the first
	// statistical elimination (default 5).
	FirstTest int
	// Alpha is the elimination significance level (default 0.05).
	Alpha float64
	// MinSurvivors stops a race when this many candidates remain
	// (default 4).
	MinSurvivors int
	// Elites carried between iterations (default 4).
	Elites int
	// Seed makes runs reproducible.
	Seed int64
	// Parallelism bounds concurrent Cost calls (default GOMAXPROCS).
	Parallelism int
	// DisableElimination turns off the Friedman-test racing: every
	// candidate is evaluated on every instance of a race. This is the
	// ablation arm for measuring what statistical elimination buys.
	DisableElimination bool
	// Context, when non-nil, cancels the run: the tuner checks it before
	// each iteration and each instance step of a race, so cancellation
	// latency is bounded by one batch of Cost calls (one instance across
	// the alive candidates), not the whole budget.
	Context context.Context
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// ctxErr is the tuner's cancellation probe (nil Context never cancels).
func (o Options) ctxErr() error {
	if o.Context == nil {
		return nil
	}
	return o.Context.Err()
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 2000
	}
	if o.FirstTest <= 0 {
		o.FirstTest = 5
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.MinSurvivors <= 0 {
		o.MinSurvivors = 4
	}
	if o.Elites <= 0 {
		o.Elites = 4
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
	return o
}

// RaceEvent records the number of surviving configurations after an
// instance step of a race — the data behind the paper's Figure 2.
type RaceEvent struct {
	Iteration int
	Instance  int
	Alive     int
}

// IterationSummary describes one sample-race-update round.
type IterationSummary struct {
	Iteration   int
	Sampled     int
	Survivors   int
	BestCost    float64
	Evaluations int
}

// Result is the tuner's output.
type Result struct {
	Best        Assignment
	BestCost    float64 // mean cost over all instances
	Evaluations int
	Iterations  []IterationSummary
	RaceTrace   []RaceEvent
}

// candidate pairs an assignment with its per-instance costs.
type candidate struct {
	cfg   Assignment
	key   string
	costs []float64 // indexed by instance; NaN = not yet evaluated
}

// Tuner runs iterated racing over a space against an evaluator.
type Tuner struct {
	space *Space
	eval  Evaluator
	opt   Options
	rng   *rand.Rand

	cache map[string][]float64 // key -> per-instance costs
	used  int
	trace []RaceEvent
}

// New builds a tuner.
func New(space *Space, eval Evaluator, opt Options) (*Tuner, error) {
	if space == nil || eval == nil {
		return nil, fmt.Errorf("irace: nil space or evaluator")
	}
	if eval.NumInstances() < 2 {
		return nil, fmt.Errorf("irace: need >= 2 instances, got %d", eval.NumInstances())
	}
	o := opt.withDefaults()
	return &Tuner{
		space: space,
		eval:  eval,
		opt:   o,
		rng:   rand.New(rand.NewSource(o.Seed)),
		cache: make(map[string][]float64),
	}, nil
}

// Run executes the iterated race and returns the best configuration found.
func (t *Tuner) Run() (*Result, error) {
	nParam := len(t.space.Params)
	iterations := 2 + int(math.Log2(float64(nParam)))
	res := &Result{}

	var elites []*candidate
	for j := 1; j <= iterations && t.used < t.opt.Budget; j++ {
		if err := t.opt.ctxErr(); err != nil {
			return nil, err
		}
		left := t.opt.Budget - t.used
		// Racing needs at least two candidates seen on FirstTest instances;
		// with less budget than that left, stop rather than overspend.
		if left < 2*t.opt.FirstTest {
			break
		}
		iterBudget := left / (iterations - j + 1)
		perConfig := t.opt.FirstTest + 4
		nNew := iterBudget / perConfig
		if nNew < t.opt.MinSurvivors+2 {
			nNew = t.opt.MinSurvivors + 2
		}

		frac := float64(j-1) / float64(iterations)
		cands := make([]*candidate, 0, nNew+len(elites))
		cands = append(cands, elites...)
		seen := map[string]bool{}
		for _, e := range elites {
			seen[e.key] = true
		}
		for tries := 0; len(cands) < nNew+len(elites) && tries < nNew*20; tries++ {
			cfg := t.sample(elites, frac)
			key := cfg.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			cands = append(cands, t.candidateFor(cfg, key))
		}
		// Affordability (the FirstTest guarantee): every raced candidate
		// must be evaluable on the first FirstTest instances without
		// exceeding the budget, so trim the newest samples first (elites
		// sit at the front and their early instances are often already
		// paid for). This keeps Evaluations <= Budget exact instead of
		// overshooting by O(candidates) on the final race.
		if max := left / t.opt.FirstTest; len(cands) > max {
			cands = cands[:max]
		}

		survivors, err := t.race(j, cands)
		if err != nil {
			return nil, err
		}
		if len(survivors) == 0 {
			return nil, fmt.Errorf("irace: race %d eliminated every candidate", j)
		}
		nElite := t.opt.Elites
		if nElite > len(survivors) {
			nElite = len(survivors)
		}
		elites = survivors[:nElite]
		best := elites[0]
		res.Iterations = append(res.Iterations, IterationSummary{
			Iteration:   j,
			Sampled:     len(cands),
			Survivors:   len(survivors),
			BestCost:    t.meanCost(best),
			Evaluations: t.used,
		})
		t.opt.Log("irace: iteration %d/%d: %d candidates, %d survive, best cost %.4f, %d/%d evals",
			j, iterations, len(cands), len(survivors), t.meanCost(best), t.used, t.opt.Budget)
	}

	if len(elites) == 0 {
		return nil, fmt.Errorf("irace: no configuration evaluated (budget %d too small)", t.opt.Budget)
	}
	// Finalize: evaluate the best configuration on all instances.
	best := elites[0]
	t.completeAll(best)
	res.Best = best.cfg.Clone()
	res.BestCost = t.meanCost(best)
	res.Evaluations = t.used
	res.RaceTrace = t.trace
	return res, nil
}

func (t *Tuner) candidateFor(cfg Assignment, key string) *candidate {
	costs, ok := t.cache[key]
	if !ok {
		costs = make([]float64, t.eval.NumInstances())
		for i := range costs {
			costs[i] = math.NaN()
		}
		t.cache[key] = costs
	}
	return &candidate{cfg: cfg, key: key, costs: costs}
}

// meanCost averages the evaluated instances of c.
func (t *Tuner) meanCost(c *candidate) float64 {
	sum, n := 0.0, 0
	for _, v := range c.costs {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// completeAll evaluates any remaining instances for c (within budget).
func (t *Tuner) completeAll(c *candidate) {
	var missing []int
	for i, v := range c.costs {
		if math.IsNaN(v) {
			missing = append(missing, i)
		}
	}
	if left := t.opt.Budget - t.used; len(missing) > left {
		// Finalizing the winner must not overspend either; the mean cost
		// is taken over whatever instances the budget covered.
		if left < 0 {
			left = 0
		}
		missing = missing[:left]
	}
	t.evalBatch([]*candidate{c}, missing)
}

// pending counts the evaluations one instance step would charge: the alive
// candidates whose cost on inst is still unknown.
func (t *Tuner) pending(cands []*candidate, inst int) int {
	n := 0
	for _, c := range cands {
		if math.IsNaN(c.costs[inst]) {
			n++
		}
	}
	return n
}

// evalBatch evaluates every (candidate, instance) pair that is still NaN,
// in parallel, and charges the budget. The job list is trimmed to the
// remaining budget as a final invariant — callers size their batches so
// the trim never splits an instance step that a statistical test will
// read, but t.used <= Budget must hold unconditionally.
func (t *Tuner) evalBatch(cands []*candidate, instances []int) {
	type job struct {
		c    *candidate
		inst int
	}
	var jobs []job
	for _, c := range cands {
		for _, inst := range instances {
			if math.IsNaN(c.costs[inst]) {
				jobs = append(jobs, job{c, inst})
			}
		}
	}
	if left := t.opt.Budget - t.used; len(jobs) > left {
		if left < 0 {
			left = 0
		}
		jobs = jobs[:left]
	}
	if len(jobs) == 0 {
		return
	}
	t.used += len(jobs)

	// A batch-capable evaluator gets one call per instance with every
	// candidate that still needs that instance, so it can replay them in
	// shared column walks. Costs land in the same slots as the
	// per-pair path would fill.
	if be, ok := t.eval.(BatchEvaluator); ok {
		instOrder := make([]int, 0, len(instances))
		byInst := make(map[int][]job)
		for _, jb := range jobs {
			if _, seen := byInst[jb.inst]; !seen {
				instOrder = append(instOrder, jb.inst)
			}
			byInst[jb.inst] = append(byInst[jb.inst], jb)
		}
		sem := make(chan struct{}, t.opt.Parallelism)
		var wg sync.WaitGroup
		for _, inst := range instOrder {
			group := byInst[inst]
			wg.Add(1)
			sem <- struct{}{}
			go func(inst int, group []job) {
				defer wg.Done()
				cfgs := make([]Assignment, len(group))
				for j, jb := range group {
					cfgs[j] = jb.c.cfg
				}
				costs := be.CostBatch(cfgs, inst)
				for j, jb := range group {
					jb.c.costs[inst] = costs[j]
				}
				<-sem
			}(inst, group)
		}
		wg.Wait()
		return
	}

	sem := make(chan struct{}, t.opt.Parallelism)
	var wg sync.WaitGroup
	for _, jb := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(jb job) {
			defer wg.Done()
			jb.c.costs[jb.inst] = t.eval.Cost(jb.c.cfg, jb.inst)
			<-sem
		}(jb)
	}
	wg.Wait()
}
