package racesim

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"racesim/internal/core"
	"racesim/internal/irace"
	"racesim/internal/sim"
	"racesim/internal/trace"
	"racesim/internal/ubench"
	"racesim/internal/workload"
)

// runCursor replays a trace through the legacy per-event decode path (a
// trace.Cursor feeding the model's decode cache). The production API only
// exposes the decode-once and batched paths; this oracle lives in the test
// files so the parity suite can still compare against a replay that
// re-derives everything per event.
func runCursor(cfg sim.Config, tr *trace.Trace) (core.Result, error) {
	if tr.WarmData {
		cfg.Mem.ZeroFillOpt = false
	}
	m, err := cfg.Model()
	if err != nil {
		return core.Result{}, err
	}
	return m.Run(trace.NewCursor(tr))
}

// parityTraces returns replay-parity fixtures spanning both trace sources:
// an emulated micro-benchmark (cold data) and a synthesized workload
// (WarmData, which flips the zero-fill handling).
func parityTraces(t testing.TB) []*trace.Trace {
	t.Helper()
	b, ok := ubench.ByName("MD")
	if !ok {
		t.Fatal("missing micro-benchmark MD")
	}
	ub, err := b.Trace(ubench.Options{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("missing workload mcf")
	}
	wl, err := workload.Generate(p, workload.Options{Events: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	return []*trace.Trace{ub, wl}
}

// parityConfigs returns both public presets plus their DepBug variants, so
// the golden comparison covers both core kinds and both decoder variants.
func parityConfigs() []sim.Config {
	a53bug := sim.PublicA53()
	a53bug.DecoderDepBug = true
	a72bug := sim.PublicA72()
	a72bug.DecoderDepBug = true
	return []sim.Config{sim.PublicA53(), a53bug, sim.PublicA72(), a72bug}
}

// TestReplayParityDecodedVsCursor is the golden replay-parity test: the
// decode-once columnar path (Config.Run) must produce a core.Result
// deep-equal to the legacy per-event decode oracle (runCursor, above) for
// both core kinds, both decoder variants, and both trace sources.
func TestReplayParityDecodedVsCursor(t *testing.T) {
	for _, tr := range parityTraces(t) {
		for _, cfg := range parityConfigs() {
			legacy, err := runCursor(cfg, tr)
			if err != nil {
				t.Fatalf("%s on %s (cursor): %v", cfg.Name, tr.Name, err)
			}
			decoded, err := cfg.Run(tr)
			if err != nil {
				t.Fatalf("%s on %s (decoded): %v", cfg.Name, tr.Name, err)
			}
			if !reflect.DeepEqual(legacy, decoded) {
				t.Errorf("%s (kind %s, depbug %v) on %s:\n cursor  %+v\n decoded %+v",
					cfg.Name, cfg.Kind, cfg.DecoderDepBug, tr.Name, legacy, decoded)
			}
		}
	}
}

// TestReplayParityInvalidWord asserts both paths fail identically on an
// undecodable word: same error text, after replaying the same prefix.
func TestReplayParityInvalidWord(t *testing.T) {
	tr := parityTraces(t)[0]
	bad := &trace.Trace{Name: "bad", Events: append(append([]trace.Event{}, tr.Events[:16]...),
		trace.Event{PC: 0x9000, Word: ^uint32(0)})}
	for _, cfg := range []sim.Config{sim.PublicA53(), sim.PublicA72()} {
		_, errCursor := runCursor(cfg, bad)
		_, errDecoded := cfg.Run(bad)
		if errCursor == nil || errDecoded == nil {
			t.Fatalf("%s: want errors from both paths, got cursor=%v decoded=%v", cfg.Kind, errCursor, errDecoded)
		}
		if errCursor.Error() != errDecoded.Error() {
			t.Errorf("%s: error mismatch:\n cursor  %v\n decoded %v", cfg.Kind, errCursor, errDecoded)
		}
	}
}

// TestDecodedSharedAcrossWorkers replays one shared Decoded concurrently
// from many workers under different configurations — the runner-pool
// sharing pattern — and checks every worker gets the sequential answer.
// Run with -race to verify the immutable-sharing contract.
func TestDecodedSharedAcrossWorkers(t *testing.T) {
	tr := parityTraces(t)[0]
	d := tr.Decoded(false)
	configs := make([]sim.Config, 16)
	for i := range configs {
		var cfg sim.Config
		if i%2 == 0 {
			cfg = sim.PublicA53()
			cfg.Width = 1 + i%2
			cfg.Mem.L1D.HitLatency = 2 + i/2%3
		} else {
			cfg = sim.PublicA72()
			cfg.ROBEntries = 64 + 16*(i/2%4)
		}
		cfg.DecoderDepBug = false // all workers share the one correct-decode variant
		configs[i] = cfg
	}
	want := make([]core.Result, len(configs))
	for i, cfg := range configs {
		res, err := cfg.RunDecoded(d)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	var wg sync.WaitGroup
	got := make([]core.Result, len(configs))
	errs := make([]error, len(configs))
	for i := range configs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = configs[i].RunDecoded(d)
		}(i)
	}
	wg.Wait()
	for i := range configs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("worker %d: concurrent result differs from sequential", i)
		}
	}
}

// sampleConfig draws one random configuration from the tuning space of a
// random core kind. Invalid parameter combinations are resampled, so the
// result is always a validated configuration.
func sampleConfig(t *testing.T, rng *rand.Rand, spaces map[sim.CoreKind]*irace.Space, depBug bool) sim.Config {
	t.Helper()
	for tries := 0; tries < 100; tries++ {
		base := sim.PublicA53()
		if rng.Intn(2) == 1 {
			base = sim.PublicA72()
		}
		base.DecoderDepBug = depBug
		a := irace.Assignment{}
		for _, p := range spaces[base.Kind].Params {
			a[p.Name] = p.Values[rng.Intn(len(p.Values))]
		}
		cfg, err := sim.Apply(base, a)
		if err != nil {
			continue // invalid combination: resample
		}
		return cfg
	}
	t.Fatal("could not sample a valid configuration in 100 tries")
	return sim.Config{}
}

// TestLaneParityRandomVectors is the lane-parity property test: random
// vectors of configurations drawn from the tuning space — mixing both core
// kinds within one batch — must come back from the lane-batched column
// walk exactly equal, lane by lane, to sequential decode-once replay of
// the same configurations. Both decoder variants and both trace sources
// are covered.
func TestLaneParityRandomVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(20190324)) // the paper's conference date
	spaces := map[sim.CoreKind]*irace.Space{}
	for _, kind := range []sim.CoreKind{sim.InOrder, sim.OutOfOrder} {
		sp, err := sim.Space(kind)
		if err != nil {
			t.Fatal(err)
		}
		spaces[kind] = sp
	}
	for _, tr := range parityTraces(t) {
		for _, depBug := range []bool{false, true} {
			d := tr.Decoded(depBug)
			for round := 0; round < 3; round++ {
				lanes := 2 + rng.Intn(9) // 2..10
				cfgs := make([]sim.Config, lanes)
				for i := range cfgs {
					cfgs[i] = sampleConfig(t, rng, spaces, depBug)
				}
				batched, err := sim.RunBatch(cfgs, d)
				if err != nil {
					t.Fatalf("%s depbug=%v round %d: RunBatch: %v", tr.Name, depBug, round, err)
				}
				if len(batched) != lanes {
					t.Fatalf("%s depbug=%v round %d: %d results for %d lanes", tr.Name, depBug, round, len(batched), lanes)
				}
				for i, cfg := range cfgs {
					want, err := cfg.RunDecoded(d)
					if err != nil {
						t.Fatalf("%s depbug=%v round %d lane %d: RunDecoded: %v", tr.Name, depBug, round, i, err)
					}
					if !reflect.DeepEqual(want, batched[i]) {
						t.Errorf("%s depbug=%v round %d lane %d (%s):\n sequential %+v\n batched    %+v",
							tr.Name, depBug, round, i, cfg.Kind, want, batched[i])
					}
				}
			}
		}
	}
}

// TestRunRejectsMismatchedDecodedVariant guards the DepBug contract: a
// decoded trace built with one decoder variant cannot silently replay on a
// model configured with the other.
func TestRunRejectsMismatchedDecodedVariant(t *testing.T) {
	tr := parityTraces(t)[0]
	cfg := sim.PublicA53()
	cfg.DecoderDepBug = true
	if _, err := cfg.RunDecoded(tr.Decoded(false)); err == nil {
		t.Fatal("want variant-mismatch error")
	}
}
