// Command ubench inspects the Table I micro-benchmark suite: list the
// benchmarks, dump a benchmark's trace to a RIFT file, or compare one
// benchmark between the reference board and a simulator configuration.
//
// Usage:
//
//	ubench -list
//	ubench -dump MD -o md.rift
//	ubench -compare CS1 -core a53
package main

import (
	"flag"
	"fmt"
	"os"

	"racesim/internal/hw"
	"racesim/internal/isa"
	"racesim/internal/sim"
	"racesim/internal/ubench"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the suite")
		dump    = flag.String("dump", "", "record a benchmark trace to -o")
		out     = flag.String("o", "bench.rift", "output path for -dump")
		compare = flag.String("compare", "", "compare a benchmark between board and model")
		disasm  = flag.String("disasm", "", "print a benchmark's assembly listing")
		coreK   = flag.String("core", "a53", "core for -compare: a53 or a72")
		scale   = flag.Float64("scale", 0.01, "scale factor")
		initArr = flag.Bool("init-arrays", false, "initialize arrays before the timed loop")
	)
	flag.Parse()
	if err := run(*list, *dump, *out, *compare, *disasm, *coreK, *scale, *initArr); err != nil {
		fmt.Fprintln(os.Stderr, "ubench:", err)
		os.Exit(1)
	}
}

func run(list bool, dump, out, compare, disasm, coreK string, scale float64, initArr bool) error {
	opts := ubench.Options{Scale: scale, InitArrays: initArr}
	switch {
	case disasm != "":
		b, ok := ubench.ByName(disasm)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", disasm)
		}
		prog, err := b.Program(opts)
		if err != nil {
			return err
		}
		listing, err := isa.DisassembleProgram(prog)
		if err != nil {
			return err
		}
		fmt.Print(listing)
		return nil

	case list:
		fmt.Printf("%-14s %-12s %12s  %s\n", "bench", "category", "paper insns", "description")
		for _, b := range ubench.Suite() {
			fmt.Printf("%-14s %-12s %12d  %s\n", b.Name, b.Category, b.PaperInstructions, b.Description)
		}
		return nil

	case dump != "":
		b, ok := ubench.ByName(dump)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", dump)
		}
		tr, err := b.Trace(opts)
		if err != nil {
			return err
		}
		if err := tr.WriteFile(out); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d instructions\n", out, tr.Len())
		return nil

	case compare != "":
		b, ok := ubench.ByName(compare)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", compare)
		}
		tr, err := b.Trace(opts)
		if err != nil {
			return err
		}
		plat, err := hw.Firefly()
		if err != nil {
			return err
		}
		board := plat.A53
		cfg := sim.PublicA53()
		if coreK == "a72" {
			board = plat.A72
			cfg = sim.PublicA72()
		}
		cnt, err := board.Measure(tr)
		if err != nil {
			return err
		}
		res, err := cfg.Run(tr)
		if err != nil {
			return err
		}
		errPct := (res.CPI() - cnt.CPI) / cnt.CPI * 100
		fmt.Printf("benchmark:     %s (%d instructions)\n", b.Name, tr.Len())
		fmt.Printf("board CPI:     %.4f (%s)\n", cnt.CPI, board.Name)
		fmt.Printf("model CPI:     %.4f (%s)\n", res.CPI(), cfg.Name)
		fmt.Printf("CPI error:     %+.1f%%\n", errPct)
		fmt.Printf("board brMPKI:  %.2f   model brMPKI: %.2f\n",
			cnt.BranchMPKI, res.Branch.MPKI(res.Instructions))
		return nil
	}
	return fmt.Errorf("one of -list, -dump or -compare is required")
}
