// Command ubench inspects the Table I micro-benchmark suite: list the
// benchmarks, dump a benchmark's trace to a RIFT file, or compare
// benchmarks between the reference board and a simulator configuration.
//
// Usage:
//
//	ubench -list
//	ubench -dump MD -o md.rift
//	ubench -compare CS1 -core a53
//	ubench -compare all -core a72 -parallelism 8 -cache simcache.json
//
// -compare all sweeps the whole suite: trace generation, board
// measurement and model simulation fan out over -parallelism workers,
// and simulations are memoized in the -cache snapshot (shared with the
// other binaries), so repeated comparisons are mostly cache hits.
// -cpuprofile/-memprofile write pprof profiles.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"

	"racesim/internal/hw"
	"racesim/internal/isa"
	"racesim/internal/par"
	"racesim/internal/prof"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/ubench"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list the suite")
		dump        = flag.String("dump", "", "record a benchmark trace to -o")
		out         = flag.String("o", "bench.rift", "output path for -dump")
		compare     = flag.String("compare", "", "compare a benchmark (or 'all') between board and model")
		disasm      = flag.String("disasm", "", "print a benchmark's assembly listing")
		coreK       = flag.String("core", "a53", "core for -compare: a53 or a72")
		scale       = flag.Float64("scale", 0.01, "scale factor")
		initArr     = flag.Bool("init-arrays", false, "initialize arrays before the timed loop")
		parallelism = flag.Int("parallelism", 0, "concurrent benchmarks for -compare all (0 = GOMAXPROCS)")
		cachePath   = flag.String("cache", "", "JSON file persisting the simulation cache across runs")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	err := prof.Run(*cpuprofile, *memprofile, func() error {
		return run(*list, *dump, *out, *compare, *disasm, *coreK, *scale, *initArr, *parallelism, *cachePath)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ubench:", err)
		os.Exit(1)
	}
}

func run(list bool, dump, out, compare, disasm, coreK string, scale float64,
	initArr bool, parallelism int, cachePath string) error {
	opts := ubench.Options{Scale: scale, InitArrays: initArr}
	switch {
	case disasm != "":
		b, ok := ubench.ByName(disasm)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", disasm)
		}
		prog, err := b.Program(opts)
		if err != nil {
			return err
		}
		listing, err := isa.DisassembleProgram(prog)
		if err != nil {
			return err
		}
		fmt.Print(listing)
		return nil

	case list:
		fmt.Printf("%-14s %-12s %12s  %s\n", "bench", "category", "paper insns", "description")
		for _, b := range ubench.Suite() {
			fmt.Printf("%-14s %-12s %12d  %s\n", b.Name, b.Category, b.PaperInstructions, b.Description)
		}
		return nil

	case dump != "":
		b, ok := ubench.ByName(dump)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", dump)
		}
		tr, err := b.Trace(opts)
		if err != nil {
			return err
		}
		if err := tr.WriteFile(out); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d instructions\n", out, tr.Len())
		return nil

	case compare != "":
		plat, err := hw.Firefly()
		if err != nil {
			return err
		}
		board := plat.A53
		cfg := sim.PublicA53()
		if coreK == "a72" {
			board = plat.A72
			cfg = sim.PublicA72()
		}
		cache := simcache.New()
		if cachePath != "" {
			n, rejected, err := cache.LoadChecked(cachePath)
			if err != nil {
				return err
			}
			if rejected > 0 {
				fmt.Fprintf(os.Stderr, "ubench: %s: rejected %d corrupted cache entries\n", cachePath, rejected)
			}
			fmt.Fprintf(os.Stderr, "cache: loaded %d entries from %s\n", n, cachePath)
		}
		if compare == "all" {
			err = compareSuite(board, cfg, opts, parallelism, cache)
		} else {
			err = compareOne(compare, board, cfg, opts, cache)
		}
		if err != nil {
			return err
		}
		if cachePath != "" {
			if err := cache.SaveFile(cachePath); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "cache: saved %d entries to %s\n", cache.Stats().Entries, cachePath)
		}
		return nil
	}
	return fmt.Errorf("one of -list, -dump or -compare is required")
}

func compareOne(name string, board *hw.Board, cfg sim.Config, opts ubench.Options, cache *simcache.Cache) error {
	b, ok := ubench.ByName(name)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", name)
	}
	tr, err := b.Trace(opts)
	if err != nil {
		return err
	}
	cnt, err := board.Measure(tr)
	if err != nil {
		return err
	}
	res, err := cache.Run(cfg, tr)
	if err != nil {
		return err
	}
	errPct := (res.CPI() - cnt.CPI) / cnt.CPI * 100
	fmt.Printf("benchmark:     %s (%d instructions)\n", b.Name, tr.Len())
	fmt.Printf("board CPI:     %.4f (%s)\n", cnt.CPI, board.Name)
	fmt.Printf("model CPI:     %.4f (%s)\n", res.CPI(), cfg.Name)
	fmt.Printf("CPI error:     %+.1f%%\n", errPct)
	fmt.Printf("board brMPKI:  %.2f   model brMPKI: %.2f\n",
		cnt.BranchMPKI, res.Branch.MPKI(res.Instructions))
	return nil
}

// compareSuite runs every benchmark through board and model on a bounded
// worker pool. Rows are assembled in suite order, so the output is
// identical for any parallelism and cache warmth.
func compareSuite(board *hw.Board, cfg sim.Config, opts ubench.Options, parallelism int, cache *simcache.Cache) error {
	benches := ubench.Suite()
	type row struct {
		boardCPI, modelCPI, errPct float64
		insns                      int
	}
	rows := make([]row, len(benches))
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	err := par.ForEach(len(benches), parallelism, func(i int) error {
		tr, err := benches[i].Trace(opts)
		if err != nil {
			return err
		}
		cnt, err := board.Measure(tr)
		if err != nil {
			return err
		}
		res, err := cache.Run(cfg, tr)
		if err != nil {
			return err
		}
		rows[i] = row{
			boardCPI: cnt.CPI,
			modelCPI: res.CPI(),
			errPct:   (res.CPI() - cnt.CPI) / cnt.CPI * 100,
			insns:    tr.Len(),
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %10s %10s %10s %8s\n", "bench", "insns", "board CPI", "model CPI", "error")
	mean := 0.0
	for i, b := range benches {
		r := rows[i]
		fmt.Printf("%-14s %10d %10.4f %10.4f %+7.1f%%\n", b.Name, r.insns, r.boardCPI, r.modelCPI, r.errPct)
		mean += math.Abs(r.errPct)
	}
	fmt.Printf("\nmean |CPI error| over %d benchmarks: %.1f%% (%s vs %s)\n",
		len(benches), mean/float64(len(benches)), board.Name, cfg.Name)
	return nil
}
