// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig4 -budget1 4000 -budget2 6000
//	experiments -run all -out EXPERIMENTS.out.md
//
// Every experiment prints the paper's claim next to the measured result so
// shape deviations are visible at a glance.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"racesim/internal/expt"
)

func main() {
	var (
		which   = flag.String("run", "all", "experiment id: all, table1, table2, fig2, fig4, fig5, fig6, fig7, fig8, staged")
		scale   = flag.Float64("scale", 0.01, "micro-benchmark scale factor")
		events  = flag.Int("events", 60_000, "workload trace length")
		budget1 = flag.Int("budget1", 2500, "irace budget, round 1")
		budget2 = flag.Int("budget2", 3500, "irace budget, round 2")
		seed    = flag.Int64("seed", 0, "seed")
		out     = flag.String("out", "", "also write results to this file")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if err := run(*which, *scale, *events, *budget1, *budget2, *seed, *out, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(which string, scale float64, events, budget1, budget2 int, seed int64, out string, quiet bool) error {
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	ctx, err := expt.NewContext(expt.Options{
		UbenchScale:    scale,
		WorkloadEvents: events,
		BudgetRound1:   budget1,
		BudgetRound2:   budget2,
		Seed:           seed,
		Log:            logf,
	})
	if err != nil {
		return err
	}

	var exps []expt.Experiment
	if which == "all" {
		exps, err = ctx.All()
		if err != nil {
			return err
		}
	} else {
		fns := map[string]func() (expt.Experiment, error){
			"table1": ctx.Table1, "table2": ctx.Table2, "fig2": ctx.Fig2,
			"fig4": ctx.Fig4, "fig5": ctx.Fig5, "fig6": ctx.Fig6,
			"fig7": ctx.Fig7, "fig8": ctx.Fig8, "staged": ctx.Staged,
		}
		fn, ok := fns[which]
		if !ok {
			return fmt.Errorf("unknown experiment %q", which)
		}
		e, err := fn()
		if err != nil {
			return err
		}
		exps = []expt.Experiment{e}
	}

	var b strings.Builder
	for _, e := range exps {
		b.WriteString(e.Render())
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
	if out != "" {
		if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
	return nil
}
