// Command experiments regenerates the paper's tables and figures and runs
// registered scenario sweeps.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig4 -budget1 4000 -budget2 6000
//	experiments -run all -out EXPERIMENTS.out.md
//	experiments -run all -parallelism 8 -cache simcache.json
//	experiments -list-scenarios
//	experiments -scenario all -shard 1/2 -resume
//	experiments -scenario 'transfer-*,budget-sweep-a53'
//	experiments -manifest sweep.json -scenario nightly
//	experiments -save-manifest sweep.json
//
// Every experiment prints the paper's claim next to the measured result so
// shape deviations are visible at a glance. Output on stdout (and -out) is
// byte-identical for any -parallelism value and any cache warmth; timing
// and cache statistics go to stderr.
//
// Both -run and -scenario resolve through the scenario registry
// (internal/scenario): -run is the classic single-pattern spelling,
// -scenario accepts comma-separated names and globs, "all" being the
// paper set. -shard i/n runs the i-th of n deterministic contiguous
// partitions of the expanded unit list; concatenating the shard outputs
// in order reproduces the unsharded output byte for byte.
//
// -cache names a JSON snapshot of the simulation cache: it is loaded (if
// present) before the run and saved after, so a repeated invocation skips
// every simulation the previous one already performed. -resume
// additionally checkpoints the snapshot after every completed unit, so an
// interrupted sweep restarted with the same flags replays finished work
// from the cache (~100% hits) and continues where it was killed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"racesim/internal/expt"
	"racesim/internal/prof"
	"racesim/internal/scenario"
	"racesim/internal/simcache"
)

func main() {
	var (
		which        = flag.String("run", "", "experiment id or pattern: all, "+strings.Join(expt.IDs(), ", "))
		scenarioPat  = flag.String("scenario", "", "comma-separated scenario names/globs ('all' = paper set); see -list-scenarios")
		listScen     = flag.Bool("list-scenarios", false, "list registered scenarios and exit")
		shard        = flag.String("shard", "", "run shard i/n of the expanded unit list (deterministic contiguous partition)")
		resume       = flag.Bool("resume", false, "checkpoint the simulation cache after every unit (implies a default -cache path)")
		ckEvery      = flag.Duration("checkpoint-every", 10*time.Second, "background checkpoint period under -resume")
		manifest     = flag.String("manifest", "", "overlay scenarios from this JSON manifest on the registry")
		saveManifest = flag.String("save-manifest", "", "write the effective scenario registry to this manifest and exit")
		scale        = flag.Float64("scale", 0.01, "micro-benchmark scale factor")
		events       = flag.Int("events", 60_000, "workload trace length")
		budget1      = flag.Int("budget1", 2500, "irace budget, round 1")
		budget2      = flag.Int("budget2", 3500, "irace budget, round 2")
		seed         = flag.Int64("seed", 0, "seed")
		parallelism  = flag.Int("parallelism", 0, "concurrent simulation units (0 = GOMAXPROCS)")
		cachePath    = flag.String("cache", "", "JSON file persisting the simulation cache across runs")
		out          = flag.String("out", "", "also write results to this file")
		quiet        = flag.Bool("q", false, "suppress progress output")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	err := prof.Run(*cpuprofile, *memprofile, func() error {
		return run(options{
			run: *which, scenario: *scenarioPat, list: *listScen, shard: *shard,
			resume: *resume, ckEvery: *ckEvery, manifest: *manifest, saveManifest: *saveManifest,
			scale: *scale, events: *events, budget1: *budget1, budget2: *budget2,
			seed: *seed, parallelism: *parallelism, cachePath: *cachePath,
			out: *out, quiet: *quiet,
		})
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type options struct {
	run, scenario    string
	list             bool
	shard            string
	resume           bool
	ckEvery          time.Duration
	manifest         string
	saveManifest     string
	scale            float64
	events           int
	budget1, budget2 int
	seed             int64
	parallelism      int
	cachePath, out   string
	quiet            bool
}

// defaultResumeCache is the checkpoint path -resume uses when -cache was
// not given; a resumable sweep needs a snapshot on disk by definition.
const defaultResumeCache = "simcache.json"

func run(o options) error {
	logf := func(format string, args ...any) {
		if !o.quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	specs := scenario.Registry()
	if o.manifest != "" {
		extra, err := scenario.LoadManifest(o.manifest)
		if err != nil {
			return err
		}
		specs = scenario.Merge(specs, extra)
	}

	if o.saveManifest != "" {
		if err := scenario.SaveManifest(o.saveManifest, specs); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d scenarios to %s\n", len(specs), o.saveManifest)
		return nil
	}
	if o.list {
		return listScenarios(specs)
	}

	if o.run != "" && o.scenario != "" {
		return fmt.Errorf("cannot combine -run and -scenario; they are the same selector")
	}
	pattern := o.scenario
	if pattern == "" {
		pattern = o.run
	}
	if pattern == "" {
		pattern = "all"
	}
	selected, err := scenario.Select(specs, pattern)
	if err != nil {
		return err
	}
	units, err := scenario.Expand(selected)
	if err != nil {
		return err
	}
	total := len(units)
	si, sn, err := scenario.ParseShard(o.shard)
	if err != nil {
		return err
	}
	units = scenario.Shard(units, si, sn)
	if sn > 1 {
		logf("scenario: shard %d/%d: %d of %d units", si, sn, len(units), total)
	}

	cachePath := o.cachePath
	if o.resume && cachePath == "" {
		cachePath = defaultResumeCache
		logf("scenario: -resume without -cache: checkpointing to %s", cachePath)
	}

	// Interrupt handling (flush a final checkpoint on SIGINT/SIGTERM)
	// lives in scenario.Run, armed only after the checkpoint is loaded.
	cache := simcache.New()
	results, err := scenario.Run(units, scenario.RunOptions{
		Expt: expt.Options{
			UbenchScale:    o.scale,
			WorkloadEvents: o.events,
			BudgetRound1:   o.budget1,
			BudgetRound2:   o.budget2,
			Seed:           o.seed,
			Parallelism:    o.parallelism,
			Cache:          cache,
			Log:            logf,
		},
		CachePath:       cachePath,
		Checkpoint:      o.resume,
		CheckpointEvery: o.ckEvery,
		Log:             logf,
	})
	if err != nil {
		return err
	}
	if rej := cache.Stats().Rejected; rej > 0 {
		// A corrupted checkpoint is worth a warning even under -q: the
		// affected units were silently re-simulated.
		fmt.Fprintf(os.Stderr, "experiments: %s: rejected %d corrupted cache entries\n", cachePath, rej)
	}

	rendered := scenario.RenderAll(results)
	fmt.Print(rendered)
	if o.out != "" {
		if err := os.WriteFile(o.out, []byte(rendered), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", o.out)
	}

	// Wall-clock and cache effectiveness on stderr, never in the artifact.
	for _, r := range results {
		fmt.Fprintf(os.Stderr, "timing: %-6s %v\n", r.Unit.ID, r.Experiment.Elapsed.Round(time.Millisecond))
	}
	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d shared in-flight (%.1f%% hit rate), %d entries\n",
		st.Hits, st.Misses, st.Shared, st.HitRate()*100, st.Entries)
	return nil
}

func listScenarios(specs []scenario.Spec) error {
	units, err := scenario.Expand(specs)
	if err != nil {
		return err
	}
	perScenario := map[string]int{}
	for _, u := range units {
		perScenario[u.Scenario]++
	}
	fmt.Printf("%-22s %-14s %5s  %s\n", "scenario", "kind", "units", "description")
	for _, s := range specs {
		fmt.Printf("%-22s %-14s %5d  %s\n", s.Name, s.Kind, perScenario[s.Name], s.Description)
	}
	fmt.Printf("\n%d scenarios, %d units; 'all' selects the paper set (%s)\n",
		len(specs), len(units), strings.Join(scenario.PaperSet(specs), ", "))
	return nil
}
