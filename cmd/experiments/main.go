// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig4 -budget1 4000 -budget2 6000
//	experiments -run all -out EXPERIMENTS.out.md
//	experiments -run all -parallelism 8 -cache simcache.json
//
// Every experiment prints the paper's claim next to the measured result so
// shape deviations are visible at a glance. Output on stdout (and -out) is
// byte-identical for any -parallelism value and any cache warmth; timing
// and cache statistics go to stderr.
//
// -cache names a JSON snapshot of the simulation cache: it is loaded (if
// present) before the run and saved after, so a repeated invocation skips
// every simulation the previous one already performed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"racesim/internal/expt"
	"racesim/internal/prof"
	"racesim/internal/simcache"
)

func main() {
	var (
		which       = flag.String("run", "all", "experiment id: all, "+strings.Join(expt.IDs(), ", "))
		scale       = flag.Float64("scale", 0.01, "micro-benchmark scale factor")
		events      = flag.Int("events", 60_000, "workload trace length")
		budget1     = flag.Int("budget1", 2500, "irace budget, round 1")
		budget2     = flag.Int("budget2", 3500, "irace budget, round 2")
		seed        = flag.Int64("seed", 0, "seed")
		parallelism = flag.Int("parallelism", 0, "concurrent simulation units (0 = GOMAXPROCS)")
		cachePath   = flag.String("cache", "", "JSON file persisting the simulation cache across runs")
		out         = flag.String("out", "", "also write results to this file")
		quiet       = flag.Bool("q", false, "suppress progress output")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	err := prof.Run(*cpuprofile, *memprofile, func() error {
		return run(*which, *scale, *events, *budget1, *budget2, *seed, *parallelism, *cachePath, *out, *quiet)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(which string, scale float64, events, budget1, budget2 int, seed int64,
	parallelism int, cachePath, out string, quiet bool) error {
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	cache := simcache.New()
	if cachePath != "" {
		if err := simcache.ValidatePath(cachePath); err != nil {
			return err
		}
		n, err := cache.LoadFile(cachePath)
		if err != nil {
			return err
		}
		if rej := cache.Stats().Rejected; rej > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %s: rejected %d corrupted cache entries\n", cachePath, rej)
		}
		logf("cache: loaded %d entries from %s", n, cachePath)
	}

	ctx, err := expt.NewContext(expt.Options{
		UbenchScale:    scale,
		WorkloadEvents: events,
		BudgetRound1:   budget1,
		BudgetRound2:   budget2,
		Seed:           seed,
		Parallelism:    parallelism,
		Cache:          cache,
		Log:            logf,
	})
	if err != nil {
		return err
	}

	var exps []expt.Experiment
	if which == "all" {
		exps, err = ctx.All()
		if err != nil {
			return err
		}
	} else {
		fn, ok := ctx.ByID(which)
		if !ok {
			return fmt.Errorf("unknown experiment %q", which)
		}
		start := time.Now()
		e, err := fn()
		if err != nil {
			return err
		}
		e.Elapsed = time.Since(start)
		exps = []expt.Experiment{e}
	}

	var b strings.Builder
	for _, e := range exps {
		b.WriteString(e.Render())
		b.WriteByte('\n')
	}
	fmt.Print(b.String())
	if out != "" {
		if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}

	// Wall-clock and cache effectiveness on stderr, never in the artifact.
	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "timing: %-6s %v\n", e.ID, e.Elapsed.Round(time.Millisecond))
	}
	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d shared in-flight (%.1f%% hit rate), %d entries\n",
		st.Hits, st.Misses, st.Shared, st.HitRate()*100, st.Entries)
	if cachePath != "" {
		if err := cache.SaveFile(cachePath); err != nil {
			return err
		}
		logf("cache: saved %d entries to %s", cache.Stats().Entries, cachePath)
	}
	return nil
}
