// Command validate runs the paper's full hardware-validation methodology
// (Fig. 1) against the reference board for one core and writes the tuned
// model configuration.
//
// Usage:
//
//	validate -core a53 -budget1 4000 -budget2 6000 -out tuned-a53.json
//	validate -core a72 -parallelism 8 -cache simcache.json
//
// -parallelism fans the pipeline's simulations (tuning races, per-stage
// error evaluations) across a bounded worker pool; -cache persists the
// simulation cache across runs, so re-validating with overlapping
// configurations is mostly cache hits. Neither changes the result.
// -cpuprofile/-memprofile write pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"

	"racesim/internal/hw"
	"racesim/internal/prof"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/validate"
)

func main() {
	var (
		coreK       = flag.String("core", "a53", "core to validate: a53 or a72")
		budget1     = flag.Int("budget1", 3000, "irace budget for tuning round 1")
		budget2     = flag.Int("budget2", 4000, "irace budget for tuning round 2")
		scale       = flag.Float64("scale", 0.01, "micro-benchmark scale factor")
		seed        = flag.Int64("seed", 0, "tuner seed")
		parallelism = flag.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cachePath   = flag.String("cache", "", "JSON file persisting the simulation cache across runs")
		out         = flag.String("out", "", "write the tuned config JSON here")
		quiet       = flag.Bool("q", false, "suppress progress output")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	err := prof.Run(*cpuprofile, *memprofile, func() error {
		return run(*coreK, *budget1, *budget2, *scale, *seed, *parallelism, *cachePath, *out, *quiet)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

func run(coreK string, budget1, budget2 int, scale float64, seed int64,
	parallelism int, cachePath, out string, quiet bool) error {
	plat, err := hw.Firefly()
	if err != nil {
		return err
	}
	board := plat.A53
	public := sim.PublicA53()
	if coreK == "a72" {
		board = plat.A72
		public = sim.PublicA72()
	} else if coreK != "a53" {
		return fmt.Errorf("unknown core %q", coreK)
	}

	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Printf(format+"\n", args...)
		}
	}
	cache := simcache.New()
	if cachePath != "" {
		n, rejected, err := cache.LoadChecked(cachePath)
		if err != nil {
			return err
		}
		if rejected > 0 {
			fmt.Fprintf(os.Stderr, "validate: %s: rejected %d corrupted cache entries\n", cachePath, rejected)
		}
		logf("cache: loaded %d entries from %s", n, cachePath)
	}
	stages, err := validate.Pipeline(board, public, validate.PipelineOptions{
		BudgetRound1: budget1,
		BudgetRound2: budget2,
		Seed:         seed,
		UbenchScale:  scale,
		Cache:        cache,
		Parallelism:  parallelism,
		Log:          logf,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\n%-10s %-12s %-12s\n", "stage", "mean error", "worst bench")
	for _, s := range stages {
		worst, _ := validate.MaxError(s.Errors)
		fmt.Printf("%-10s %-12s %s (%.1f%%)\n", s.Name,
			fmt.Sprintf("%.1f%%", s.MeanError*100), worst.Name, worst.Error*100)
	}
	final := stages[len(stages)-1]
	fmt.Printf("\nper-category error of the final model:\n")
	for cat, e := range validate.CategoryErrors(final.Errors) {
		fmt.Printf("  %-14s %.1f%%\n", cat, e*100)
	}

	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d shared in-flight (%.1f%% hit rate), %d entries\n",
		st.Hits, st.Misses, st.Shared, st.HitRate()*100, st.Entries)
	if cachePath != "" {
		if err := cache.SaveFile(cachePath); err != nil {
			return err
		}
		logf("cache: saved %d entries to %s", cache.Stats().Entries, cachePath)
	}

	if out != "" {
		if err := final.Config.MarshalJSONFile(out); err != nil {
			return err
		}
		fmt.Printf("\nwrote tuned configuration to %s\n", out)
	}
	return nil
}
