// Command validate runs the paper's full hardware-validation methodology
// (Fig. 1) against the reference board for one core and writes the tuned
// model configuration.
//
// Usage:
//
//	validate -core a53 -budget1 4000 -budget2 6000 -out tuned-a53.json
package main

import (
	"flag"
	"fmt"
	"os"

	"racesim/internal/hw"
	"racesim/internal/sim"
	"racesim/internal/validate"
)

func main() {
	var (
		coreK   = flag.String("core", "a53", "core to validate: a53 or a72")
		budget1 = flag.Int("budget1", 3000, "irace budget for tuning round 1")
		budget2 = flag.Int("budget2", 4000, "irace budget for tuning round 2")
		scale   = flag.Float64("scale", 0.01, "micro-benchmark scale factor")
		seed    = flag.Int64("seed", 0, "tuner seed")
		out     = flag.String("out", "", "write the tuned config JSON here")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if err := run(*coreK, *budget1, *budget2, *scale, *seed, *out, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "validate:", err)
		os.Exit(1)
	}
}

func run(coreK string, budget1, budget2 int, scale float64, seed int64, out string, quiet bool) error {
	plat, err := hw.Firefly()
	if err != nil {
		return err
	}
	board := plat.A53
	public := sim.PublicA53()
	if coreK == "a72" {
		board = plat.A72
		public = sim.PublicA72()
	} else if coreK != "a53" {
		return fmt.Errorf("unknown core %q", coreK)
	}

	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Printf(format+"\n", args...)
		}
	}
	stages, err := validate.Pipeline(board, public, validate.PipelineOptions{
		BudgetRound1: budget1,
		BudgetRound2: budget2,
		Seed:         seed,
		UbenchScale:  scale,
		Log:          logf,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\n%-10s %-12s %-12s\n", "stage", "mean error", "worst bench")
	for _, s := range stages {
		worst, _ := validate.MaxError(s.Errors)
		fmt.Printf("%-10s %-12s %s (%.1f%%)\n", s.Name,
			fmt.Sprintf("%.1f%%", s.MeanError*100), worst.Name, worst.Error*100)
	}
	final := stages[len(stages)-1]
	fmt.Printf("\nper-category error of the final model:\n")
	for cat, e := range validate.CategoryErrors(final.Errors) {
		fmt.Printf("  %-14s %.1f%%\n", cat, e*100)
	}

	if out != "" {
		if err := final.Config.MarshalJSONFile(out); err != nil {
			return err
		}
		fmt.Printf("\nwrote tuned configuration to %s\n", out)
	}
	return nil
}
