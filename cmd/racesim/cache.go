package main

import (
	"flag"
	"fmt"
	"os"

	"racesim/internal/simcache"
)

// cmdCache inspects, converts and joins simulation-cache snapshots
// outside the cluster path: `racesim cache stats FILE...`,
// `racesim cache convert -to json|binary -o OUT FILE` and
// `racesim cache merge -o OUT FILE...`.
func cmdCache(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: racesim cache stats FILE... | racesim cache convert -to json|binary -o OUT FILE | racesim cache merge -o OUT FILE...")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "stats":
		return cacheStats(rest)
	case "convert":
		return cacheConvert(rest)
	case "merge":
		return cacheMerge(rest)
	default:
		return fmt.Errorf("unknown cache subcommand %q (want stats, convert or merge)", sub)
	}
}

// loadSnapshot reads one snapshot file into a fresh cache, reporting
// accepted and checksum-rejected entry counts. The format is sniffed, so
// either generation loads. Unlike the warm-start path (which tolerates
// absent or stale-format snapshots by starting cold), an operator-named
// file must load: a format mismatch is an error, never a silent
// "0 entries".
func loadSnapshot(path string) (c *simcache.Cache, accepted int, rejected uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	c = simcache.New()
	accepted, _, err = c.LoadBytes(data)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%s: %w", path, err)
	}
	return c, accepted, c.Stats().Rejected, nil
}

func cacheStats(args []string) error {
	fs := flag.NewFlagSet("racesim cache stats", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: racesim cache stats FILE...")
	}
	for _, path := range fs.Args() {
		if err := statOne(path); err != nil {
			return err
		}
	}
	return nil
}

// statOne prints one snapshot's audit line: format and version, entry
// count split by tier (a binary snapshot attaches mmap-backed and stays
// on disk; a legacy JSON snapshot decodes fully into memory), total and
// per-entry bytes, index size, and any checksum rejections or salvage.
func statOne(path string) error {
	c := simcache.New()
	_, rejected, err := c.LoadChecked(path)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	st := c.Stats()
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if m := c.Disk(); m != nil {
		// Binary: every record still lives on disk; verify each one the
		// way a lookup would, so `stats` audits what `run` will trust.
		bad := 0
		m.RangeKeys(func(key string, _ int) bool {
			if _, err := m.Get(key); err != nil {
				bad++
			}
			return true
		})
		fmt.Printf("%s: binary v%d, %d entries (%d in-memory, %d on-disk), %d bytes (%.1f bytes/entry), index %d bytes",
			path, m.Version(), st.Entries, st.MemEntries, st.DiskEntries,
			fi.Size(), bytesPerEntry(fi.Size(), st.Entries), m.IndexBytes())
		if m.Salvaged() {
			fmt.Printf(", salvaged")
		}
		if bad > 0 {
			fmt.Printf(", %d rejected by checksum", bad)
		}
		fmt.Println()
		return nil
	}
	fmt.Printf("%s: json legacy, %d entries (%d in-memory, %d on-disk), %d bytes (%.1f bytes/entry)",
		path, st.Entries, st.MemEntries, st.DiskEntries, fi.Size(), bytesPerEntry(fi.Size(), st.Entries))
	if rejected > 0 {
		fmt.Printf(", %d rejected by checksum", rejected)
	}
	fmt.Println()
	return nil
}

func bytesPerEntry(size int64, entries int) float64 {
	if entries == 0 {
		return 0
	}
	return float64(size) / float64(entries)
}

// cacheConvert migrates a snapshot between the binary columnar format
// and the legacy checksummed-JSON format, both directions. Conversion is
// lossless and deterministic (records serialize sorted by key), so a
// round trip through the other format reproduces the input byte for
// byte.
func cacheConvert(args []string) error {
	fs := flag.NewFlagSet("racesim cache convert", flag.ExitOnError)
	to := fs.String("to", "binary", "target format: binary or json")
	out := fs.String("o", "", "write the converted snapshot here (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: racesim cache convert -to json|binary -o OUT FILE")
	}
	if err := simcache.ValidatePath(*out); err != nil {
		return err
	}
	path := fs.Arg(0)
	c, accepted, rejected, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	if rejected > 0 {
		return fmt.Errorf("%s: %d entries rejected by checksum; refusing to convert a damaged snapshot", path, rejected)
	}
	switch *to {
	case "binary":
		err = c.SaveFile(*out)
	case "json":
		err = c.SaveFileJSON(*out)
	default:
		return fmt.Errorf("-to %q: want binary or json", *to)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "converted %d entries: %s -> %s (%s)\n", accepted, path, *out, *to)
	return nil
}

func cacheMerge(args []string) error {
	fs := flag.NewFlagSet("racesim cache merge", flag.ExitOnError)
	out := fs.String("o", "", "write the merged snapshot here (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() == 0 {
		return fmt.Errorf("usage: racesim cache merge -o OUT FILE...")
	}
	if err := simcache.ValidatePath(*out); err != nil {
		return err
	}
	merged := simcache.New()
	for _, path := range fs.Args() {
		other, accepted, rejected, err := loadSnapshot(path)
		if err != nil {
			return err
		}
		added, replaced, err := merged.Merge(other)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "%s: %d entries (%d new, %d replaced", path, accepted, added, replaced)
		if rejected > 0 {
			fmt.Fprintf(os.Stderr, ", %d rejected by checksum", rejected)
		}
		fmt.Fprintln(os.Stderr, ")")
	}
	if err := merged.SaveFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d entries to %s\n", merged.Stats().Entries, *out)
	return nil
}
