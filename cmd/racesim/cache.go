package main

import (
	"flag"
	"fmt"
	"os"

	"racesim/internal/simcache"
)

// cmdCache inspects and joins simulation-cache snapshots outside the
// cluster path: `racesim cache stats FILE...` and `racesim cache merge
// -o OUT FILE...`.
func cmdCache(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: racesim cache stats FILE... | racesim cache merge -o OUT FILE...")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "stats":
		return cacheStats(rest)
	case "merge":
		return cacheMerge(rest)
	default:
		return fmt.Errorf("unknown cache subcommand %q (want stats or merge)", sub)
	}
}

// loadSnapshot reads one snapshot file into a fresh cache, reporting
// accepted and checksum-rejected entry counts. Unlike the warm-start
// path (which tolerates absent or stale-format snapshots by starting
// cold), an operator-named file must load: a format mismatch is an
// error, never a silent "0 entries".
func loadSnapshot(path string) (c *simcache.Cache, accepted int, rejected uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	c = simcache.New()
	accepted, _, err = c.LoadBytes(data)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("%s: %w", path, err)
	}
	return c, accepted, c.Stats().Rejected, nil
}

func cacheStats(args []string) error {
	fs := flag.NewFlagSet("racesim cache stats", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: racesim cache stats FILE...")
	}
	for _, path := range fs.Args() {
		_, accepted, rejected, err := loadSnapshot(path)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d entries", path, accepted)
		if rejected > 0 {
			fmt.Printf(", %d rejected by checksum", rejected)
		}
		fmt.Println()
	}
	return nil
}

func cacheMerge(args []string) error {
	fs := flag.NewFlagSet("racesim cache merge", flag.ExitOnError)
	out := fs.String("o", "", "write the merged snapshot here (required)")
	fs.Parse(args)
	if *out == "" || fs.NArg() == 0 {
		return fmt.Errorf("usage: racesim cache merge -o OUT FILE...")
	}
	if err := simcache.ValidatePath(*out); err != nil {
		return err
	}
	merged := simcache.New()
	for _, path := range fs.Args() {
		other, accepted, rejected, err := loadSnapshot(path)
		if err != nil {
			return err
		}
		added, replaced, err := merged.Merge(other)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "%s: %d entries (%d new, %d replaced", path, accepted, added, replaced)
		if rejected > 0 {
			fmt.Fprintf(os.Stderr, ", %d rejected by checksum", rejected)
		}
		fmt.Fprintln(os.Stderr, ")")
	}
	if err := merged.SaveFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d entries to %s\n", merged.Stats().Entries, *out)
	return nil
}
