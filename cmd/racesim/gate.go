package main

import (
	"flag"
	"fmt"
	"os"

	"racesim/internal/report"
)

// cmdGate is the CI bench-regression gate: it reads committed
// BENCH_*.json result files and checks each named metric against the
// thresholds file (see docs/validation.md). It runs no simulations, so
// it is cheap enough to run on every push.
func cmdGate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	var (
		thresholds = fs.String("thresholds", "budgets/bench.json", "bench-regression thresholds JSON file")
		dir        = fs.String("dir", ".", "directory holding the BENCH_*.json files")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	b, err := report.LoadBenchBudget(*thresholds)
	if err != nil {
		return err
	}
	if err := report.CheckBench(*dir, b); err != nil {
		return err
	}
	fmt.Fprintf(os.Stdout, "bench gate: %d threshold(s) checked, all within budget\n", len(b.Thresholds))
	return nil
}
