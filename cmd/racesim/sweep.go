package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"racesim/internal/chaos"
	"racesim/internal/cluster"
	"racesim/internal/telemetry"
)

// cmdSweep is the distributed counterpart of `racesim experiments`: it
// expands a scenario selection and dispatches its units across a pool
// of `racesim serve` workers (remote URLs and/or locally spawned
// processes), assembling a byte-identical artifact on stdout.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("racesim sweep", flag.ExitOnError)
	var (
		workersFlag = fs.String("workers", "", "comma-separated worker base URLs (e.g. http://a:8080,http://b:8080)")
		spawn       = fs.Int("spawn", 0, "additionally fork N local `racesim serve` worker processes")
		scenarioPat = fs.String("scenario", "all", "comma-separated scenario names/globs ('all' = paper set)")
		window      = fs.Int("window", 2, "max in-flight units per worker")
		retriesN    = fs.Int("retries", 3, "per-unit reassignment budget on worker failure")
		cache       = fs.String("cache", "", "federated snapshot: pre-seeds workers, collects+merges their deltas")
		cacheSrv    = fs.String("cache-server", "", "shared cache-server URL: pre-seeded and delta-collected like a worker, never dispatched to; -spawn workers resolve misses against it mid-run")
		scale       = fs.Float64("scale", 0.01, "micro-benchmark scale factor")
		events      = fs.Int("events", 60_000, "workload trace length")
		budget1     = fs.Int("budget1", 2500, "irace budget, round 1")
		budget2     = fs.Int("budget2", 3500, "irace budget, round 2")
		seed        = fs.Int64("seed", 0, "seed")
		parallelism = fs.Int("parallelism", 0, "concurrent simulations per spawned worker (0 = GOMAXPROCS)")
		out         = fs.String("out", "", "also write the assembled artifact to this file")
		quiet       = fs.Bool("q", false, "suppress progress output")
		chaosSpec   = fs.String("chaos", "", "inject network faults between coordinator and workers (e.g. seed=7,drop=0.05,delay=0.1,fail=0.02); see docs/robustness.md")
		workerChaos = fs.String("worker-chaos", "", "forward a -chaos spec to every -spawn worker (engine-side faults: panic=N,stall=N,poison=N)")
		journal     = fs.String("journal", "", "journal completed units to this file (fsynced JSONL; enables crash resume)")
		resumeJnl   = fs.Bool("resume-journal", false, "replay the -journal file before dispatching: only unfinished units re-run")
		traceOut    = fs.String("trace-out", "", "write the sweep's flight recorder (one span per JSONL line) to this file; see docs/observability.md")
	)
	fs.Parse(args)

	var inj *chaos.Injector
	if *chaosSpec != "" {
		spec, err := chaos.Parse(*chaosSpec)
		if err != nil {
			return err
		}
		inj = chaos.New(spec)
	}
	if *workerChaos != "" {
		if _, err := chaos.Parse(*workerChaos); err != nil {
			return fmt.Errorf("-worker-chaos: %w", err)
		}
		if *spawn == 0 {
			return fmt.Errorf("-worker-chaos only applies to -spawn workers (remote workers take `serve -chaos` themselves)")
		}
	}
	if *resumeJnl && *journal == "" {
		return fmt.Errorf("-resume-journal requires -journal")
	}

	logf := func(format string, a ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	var urls []string
	for _, u := range strings.Split(*workersFlag, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if *spawn > 0 {
		spawned, stop, err := spawnWorkers(*spawn, *parallelism, *workerChaos, *cacheSrv, logf)
		if err != nil {
			return err
		}
		defer stop()
		urls = append(urls, spawned...)
	}
	if len(urls) == 0 {
		return fmt.Errorf("no workers: pass -workers URLs and/or -spawn N")
	}

	// Flight recorder: a root "sweep" span over the whole run; cluster.Run
	// parents one unit span per completed unit under it and folds in each
	// worker's job/engine spans collected from job results.
	var rec *telemetry.Recorder
	var root *telemetry.ActiveSpan
	if *traceOut != "" {
		rec = telemetry.NewRecorder()
		root = rec.StartSpan("sweep", telemetry.SpanContext{}, map[string]string{
			"scenario": *scenarioPat,
			"workers":  fmt.Sprint(len(urls)),
		})
	}

	output, rep, err := cluster.Run(context.Background(), cluster.Options{
		Workers:       urls,
		Window:        *window,
		Retries:       *retriesN,
		CachePath:     *cache,
		CacheServer:   *cacheSrv,
		JournalPath:   *journal,
		ResumeJournal: *resumeJnl,
		Transport:     inj.Transport(nil),
		Scenario:      *scenarioPat,
		Scale:         *scale,
		Events:        *events,
		Budget1:       *budget1,
		Budget2:       *budget2,
		Seed:          *seed,
		Trace:         traceContext(root),
		Recorder:      rec,
		Log:           logf,
	})
	if inj != nil {
		logf("sweep: chaos injected: %s", inj.Counts())
	}
	if root != nil {
		// The root span closes even on a failed sweep: a flight recorder
		// that stops at the failure is exactly what you want to read.
		root.SetAttr("units", fmt.Sprint(rep.Units))
		root.End()
		if werr := writeTrace(*traceOut, rec); werr != nil {
			if err == nil {
				err = werr
			} else {
				logf("sweep: %v", werr)
			}
		} else {
			logf("sweep: wrote flight recorder to %s", *traceOut)
		}
	}
	if err != nil {
		return err
	}
	if n := len(rep.UnitDurations); n > 0 {
		p := telemetry.Percentiles(rep.UnitDurations, 0.50, 0.90, 0.99)
		logf("sweep: unit latency over %d units: p50 %v, p90 %v, p99 %v",
			n, p[0].Round(time.Millisecond), p[1].Round(time.Millisecond), p[2].Round(time.Millisecond))
	}
	fmt.Print(output)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(output), 0o644); err != nil {
			return err
		}
		logf("wrote %s", *out)
	}
	for url, n := range rep.Completed {
		logf("sweep: worker %s rendered %d units", url, n)
	}
	if rep.Reassigned > 0 {
		logf("sweep: %d unit dispatches reassigned; dead workers: %s",
			rep.Reassigned, strings.Join(rep.Dead, ", "))
	}
	return nil
}

// traceContext extracts the span context to parent the sweep's unit
// spans under; a nil root (tracing off) yields the zero context, which
// cluster.Run treats as "don't trace".
func traceContext(root *telemetry.ActiveSpan) telemetry.SpanContext {
	if root == nil {
		return telemetry.SpanContext{}
	}
	return root.Context()
}

// writeTrace persists the flight recorder atomically (temp + rename),
// so a crash mid-write never leaves a torn JSONL behind.
func writeTrace(path string, rec *telemetry.Recorder) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// spawnWorkers forks n local `racesim serve` processes on ephemeral
// loopback ports — single-machine parallelism beyond one simcache lock
// domain (each process owns its own shared cache; the coordinator's
// federation ties them together). The bound address of each worker is
// discovered through serve's -announce file. A non-empty chaosSpec is
// forwarded to each worker's `serve -chaos`, arming engine-side faults
// (job panics, stalls, poisoned cache deltas) inside the workers. A
// non-empty cacheUpstream is forwarded as each worker's
// `serve -cache-upstream`, so spawned workers resolve misses against
// the shared cache tier mid-run.
func spawnWorkers(n, parallelism int, chaosSpec, cacheUpstream string, logf func(string, ...any)) (urls []string, stop func(), err error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, nil, fmt.Errorf("spawn: locate racesim binary: %w", err)
	}
	dir, err := os.MkdirTemp("", "racesim-sweep-")
	if err != nil {
		return nil, nil, err
	}
	var procs []*exec.Cmd
	stop = func() {
		for _, p := range procs {
			p.Process.Signal(syscall.SIGTERM)
		}
		for _, p := range procs {
			done := make(chan struct{})
			go func(p *exec.Cmd) { p.Wait(); close(done) }(p)
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				p.Process.Kill()
				p.Wait()
			}
		}
		os.RemoveAll(dir)
	}
	defer func() {
		if err != nil {
			stop()
		}
	}()
	for i := 0; i < n; i++ {
		announce := filepath.Join(dir, fmt.Sprintf("worker-%d.addr", i))
		wargs := []string{"serve",
			"-addr", "127.0.0.1:0",
			"-announce", announce,
			"-parallelism", fmt.Sprint(parallelism)}
		if chaosSpec != "" {
			wargs = append(wargs, "-chaos", chaosSpec)
		}
		if cacheUpstream != "" {
			wargs = append(wargs, "-cache-upstream", cacheUpstream)
		}
		cmd := exec.Command(exe, wargs...)
		cmd.Stderr = os.Stderr
		if err = cmd.Start(); err != nil {
			return nil, nil, fmt.Errorf("spawn worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
		addr, werr := waitAnnounce(announce, 10*time.Second)
		if werr != nil {
			err = fmt.Errorf("spawn worker %d: %w", i, werr)
			return nil, nil, err
		}
		urls = append(urls, "http://"+addr)
		logf("sweep: spawned local worker %d at http://%s (pid %d)", i, addr, cmd.Process.Pid)
	}
	return urls, stop, nil
}

// waitAnnounce polls an -announce file until the worker has written its
// bound address (the write is atomic: temp file + rename).
func waitAnnounce(path string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 {
			return strings.TrimSpace(string(data)), nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return "", fmt.Errorf("worker did not announce its address within %v", timeout)
}
