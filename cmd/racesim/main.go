// Command racesim is the single entry point to the reproduction: every
// workflow that used to be its own binary is a subcommand over the shared
// execution engine (internal/engine).
//
//	racesim run -preset public-a53 -ubench MD
//	racesim run -config tuned.json -workload mcf,xz -parallelism 4
//	racesim experiments -scenario all -shard 1/2 -resume
//	racesim validate -core a53 -budget1 4000 -budget2 6000 -out tuned.json
//	racesim ubench -list
//	racesim serve -addr :8080 -cache simcache.json
//	racesim sweep -workers http://a:8080,http://b:8080 -scenario 'fig*'
//	racesim sweep -spawn 4 -scenario all -cache federated.json
//	racesim cache merge -o all.json a.json b.json
//
// For compatibility with the historical single-purpose binary, invoking
// racesim with flags and no subcommand ("racesim -preset ... -ubench MD")
// behaves as `racesim run`. Every batch subcommand accepts the shared
// lifecycle flags -parallelism, -cache, -cpuprofile and -memprofile
// (serve has its own lifecycle: -workers, -queue-depth, -drain-timeout,
// -job-timeout);
// artifacts go to stdout, progress and cache statistics to stderr
// (except validate, which historically streams progress on stdout). See
// docs/cli.md for the full reference, including the serve HTTP API and
// job JSON schema.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"racesim/internal/chaos"
	"racesim/internal/engine"
	"racesim/internal/simcache"
	"racesim/internal/version"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: racesim <subcommand> [flags]

subcommands:
  run          simulate micro-benchmarks, workloads or a trace on one configuration
  experiments  regenerate the paper's tables/figures and run scenario sweeps
  validate     run the full hardware-validation pipeline for one core
  ubench       inspect the Table I micro-benchmark suite
  serve        long-lived HTTP job server over a shared warm simulation cache
  sweep        distribute a scenario sweep across serve workers (see docs/distributed.md)
  cache        inspect or merge simulation-cache snapshots
  gate         check committed BENCH_*.json results against regression thresholds
  version      print the build's version, go toolchain and commit

Run "racesim <subcommand> -h" for the subcommand's flags.
Bare flags ("racesim -preset ...") are shorthand for "racesim run".
`)
}

func main() {
	args := os.Args[1:]
	sub := "run"
	switch {
	case len(args) == 0:
		usage()
		os.Exit(2)
	case strings.HasPrefix(args[0], "-"):
		// Historical spelling: the old standalone racesim binary took run
		// flags directly.
		if args[0] == "-h" || args[0] == "-help" || args[0] == "--help" {
			usage()
			os.Exit(0)
		}
	default:
		sub = args[0]
		args = args[1:]
	}

	var err error
	switch sub {
	case "run":
		err = cmdRun(args)
	case "experiments":
		err = cmdExperiments(args)
	case "validate":
		err = cmdValidate(args)
	case "ubench":
		err = cmdUbench(args)
	case "serve":
		err = cmdServe(args)
	case "sweep":
		err = cmdSweep(args)
	case "cache":
		err = cmdCache(args)
	case "gate":
		err = cmdGate(args)
	case "version":
		fmt.Println(version.Get().String())
		return
	case "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "racesim: unknown subcommand %q\n\n", sub)
		usage()
		os.Exit(2)
	}
	if err != nil {
		// Keep the historical per-binary error prefixes ("experiments:",
		// "validate:", ...), which scripts grep for.
		prefix := sub
		if sub == "run" || sub == "serve" {
			prefix = "racesim"
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", prefix, err)
		os.Exit(1)
	}
}

// lifecycleFlags registers the engine options every subcommand shares.
func lifecycleFlags(fs *flag.FlagSet) (parallelism, lanes *int, cache, cpuprofile, memprofile *string) {
	parallelism = fs.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS)")
	lanes = fs.Int("lanes", 0, "lane-batch simulations sharing a trace, up to this many per column walk (0 or 1 = per-config replay; output is identical)")
	cache = fs.String("cache", "", "JSON file persisting the simulation cache across runs")
	cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	return
}

// execute runs one job on the engine with streamed output.
func execute(job engine.Job, parallelism, lanes int, cache, cpuprofile, memprofile string) error {
	_, err := engine.Execute(job, engine.Options{
		Parallelism: parallelism,
		Lanes:       lanes,
		CachePath:   cache,
		CPUProfile:  cpuprofile,
		MemProfile:  memprofile,
		Stdout:      os.Stdout,
		Stderr:      os.Stderr,
	})
	return err
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("racesim run", flag.ExitOnError)
	var (
		preset     = fs.String("preset", "public-a53", "built-in config: public-a53 or public-a72")
		cfgPath    = fs.String("config", "", "JSON config file (overrides -preset)")
		benchNames = fs.String("ubench", "", "micro-benchmark name(s), comma-separated, or \"all\" (Table I)")
		wlNames    = fs.String("workload", "", "SPEC-like workload name(s), comma-separated, or \"all\" (Table II)")
		trPath     = fs.String("trace", "", "RIFT trace file to replay")
		events     = fs.Int("events", 100_000, "workload trace length")
		scale      = fs.Float64("scale", 0.01, "micro-benchmark scale factor")
		seed       = fs.Int64("seed", 0, "workload generator seed")
	)
	parallelism, lanes, cache, cpuprofile, memprofile := lifecycleFlags(fs)
	fs.Parse(args)
	return execute(engine.Job{
		Kind: engine.KindRun,
		Run: &engine.RunJob{
			Preset:     *preset,
			ConfigPath: *cfgPath,
			Ubench:     *benchNames,
			Workload:   *wlNames,
			TracePath:  *trPath,
			Events:     *events,
			Scale:      *scale,
			Seed:       *seed,
		},
	}, *parallelism, *lanes, *cache, *cpuprofile, *memprofile)
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("racesim experiments", flag.ExitOnError)
	var (
		which        = fs.String("run", "", "experiment id or pattern ('all' = paper set)")
		scenarioPat  = fs.String("scenario", "", "comma-separated scenario names/globs ('all' = paper set); see -list-scenarios")
		listScen     = fs.Bool("list-scenarios", false, "list registered scenarios and exit")
		shard        = fs.String("shard", "", "run shard i/n of the expanded unit list (deterministic contiguous partition)")
		resume       = fs.Bool("resume", false, "checkpoint the simulation cache after every unit (implies a default -cache path)")
		ckEvery      = fs.Duration("checkpoint-every", 10*time.Second, "background checkpoint period under -resume")
		manifest     = fs.String("manifest", "", "overlay scenarios from this JSON manifest on the registry")
		saveManifest = fs.String("save-manifest", "", "write the effective scenario registry to this manifest and exit")
		scale        = fs.Float64("scale", 0.01, "micro-benchmark scale factor")
		events       = fs.Int("events", 60_000, "workload trace length")
		budget1      = fs.Int("budget1", 2500, "irace budget, round 1")
		budget2      = fs.Int("budget2", 3500, "irace budget, round 2")
		seed         = fs.Int64("seed", 0, "seed")
		out          = fs.String("out", "", "also write results to this file")
		quiet        = fs.Bool("q", false, "suppress progress output")
	)
	parallelism, lanes, cache, cpuprofile, memprofile := lifecycleFlags(fs)
	fs.Parse(args)
	return execute(engine.Job{
		Kind: engine.KindExperiments,
		Experiments: &engine.ExperimentsJob{
			Run:             *which,
			Scenario:        *scenarioPat,
			ListScenarios:   *listScen,
			Shard:           *shard,
			Resume:          *resume,
			CheckpointEvery: ckEvery.String(),
			Manifest:        *manifest,
			SaveManifest:    *saveManifest,
			Scale:           *scale,
			Events:          *events,
			Budget1:         *budget1,
			Budget2:         *budget2,
			Seed:            *seed,
			OutPath:         *out,
			Quiet:           *quiet,
		},
	}, *parallelism, *lanes, *cache, *cpuprofile, *memprofile)
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("racesim validate", flag.ExitOnError)
	var (
		coreK     = fs.String("core", "a53", "core to validate: a53 or a72")
		budget1   = fs.Int("budget1", 3000, "irace budget for tuning round 1")
		budget2   = fs.Int("budget2", 4000, "irace budget for tuning round 2")
		scale     = fs.Float64("scale", 0.01, "micro-benchmark scale factor")
		seed      = fs.Int64("seed", 0, "tuner seed")
		out       = fs.String("out", "", "write the tuned config JSON here")
		quiet     = fs.Bool("q", false, "suppress progress output")
		doReport  = fs.Bool("report", false, "render the statistical ValidationReport (see docs/validation.md)")
		budgets   = fs.String("budgets", "", "accuracy-budget JSON file declaring per-board tolerances")
		reportDir = fs.String("report-dir", "", "persist the report JSON to <dir>/validate-<core>.json (diffable history)")
		gate      = fs.Bool("gate", false, "fail (exit non-zero) when the report violates the budget; implies -report")
	)
	parallelism, lanes, cache, cpuprofile, memprofile := lifecycleFlags(fs)
	fs.Parse(args)
	return execute(engine.Job{
		Kind: engine.KindValidate,
		Validate: &engine.ValidateJob{
			Core:       *coreK,
			Budget1:    *budget1,
			Budget2:    *budget2,
			Scale:      *scale,
			Seed:       *seed,
			OutPath:    *out,
			Quiet:      *quiet,
			Report:     *doReport,
			BudgetPath: *budgets,
			ReportDir:  *reportDir,
			Gate:       *gate,
		},
	}, *parallelism, *lanes, *cache, *cpuprofile, *memprofile)
}

func cmdUbench(args []string) error {
	fs := flag.NewFlagSet("racesim ubench", flag.ExitOnError)
	var (
		list    = fs.Bool("list", false, "list the suite")
		dump    = fs.String("dump", "", "record a benchmark trace to -o")
		out     = fs.String("o", "bench.rift", "output path for -dump")
		compare = fs.String("compare", "", "compare a benchmark (or 'all') between board and model")
		disasm  = fs.String("disasm", "", "print a benchmark's assembly listing")
		coreK   = fs.String("core", "a53", "core for -compare: a53 or a72")
		scale   = fs.Float64("scale", 0.01, "scale factor")
		initArr = fs.Bool("init-arrays", false, "initialize arrays before the timed loop")
	)
	parallelism, lanes, cache, cpuprofile, memprofile := lifecycleFlags(fs)
	fs.Parse(args)
	return execute(engine.Job{
		Kind: engine.KindUbench,
		Ubench: &engine.UbenchJob{
			List:       *list,
			Dump:       *dump,
			DumpOut:    *out,
			Compare:    *compare,
			Disasm:     *disasm,
			Core:       *coreK,
			Scale:      *scale,
			InitArrays: *initArr,
		},
	}, *parallelism, *lanes, *cache, *cpuprofile, *memprofile)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("racesim serve", flag.ExitOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers     = fs.Int("workers", 1, "concurrent jobs (each fans simulations across -parallelism cores)")
		queueDepth  = fs.Int("queue-depth", 64, "maximum queued jobs before POST /v1/jobs answers 503")
		parallelism = fs.Int("parallelism", 0, "concurrent simulations per job (0 = GOMAXPROCS)")
		lanes       = fs.Int("lanes", 0, "lane-batch simulations sharing a trace within each job (0 or 1 = per-config replay)")
		cache       = fs.String("cache", "", "warm the shared cache from this snapshot at startup; saved on drain")
		drainWait   = fs.Duration("drain-timeout", 10*time.Minute, "how long SIGTERM waits for running jobs before exiting")
		announce    = fs.String("announce", "", "write the bound listen address to this file once serving (for -addr :0 spawners)")
		jobTimeout  = fs.Duration("job-timeout", 0, "server-enforced deadline per job (0 = none; jobs may also carry their own shorter timeout)")
		chaosSpec   = fs.String("chaos", "", "inject engine-side faults (e.g. seed=7,panic=1,stall=2,poison=1); see docs/robustness.md")
		cacheServer = fs.Bool("cache-server", false, "run as a shared cache tier: serve /v1/cache/* only, refuse jobs (403)")
		cacheUp     = fs.String("cache-upstream", "", "resolve cache misses against this cache-server URL mid-run and write results back")
		memBudget   = fs.Int64("mem-budget", 0, "in-memory cache budget in MiB (0 = unbounded); excess entries evict LRU-first")
	)
	fs.Parse(args)

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	opts := engine.ServerOptions{
		Parallelism:   *parallelism,
		Lanes:         *lanes,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CachePath:     *cache,
		JobTimeout:    *jobTimeout,
		CacheServer:   *cacheServer,
		CacheUpstream: *cacheUp,
		MemoryBudget:  *memBudget << 20,
		Log:           logf,
	}
	var inj *chaos.Injector
	if *chaosSpec != "" {
		spec, err := chaos.Parse(*chaosSpec)
		if err != nil {
			return err
		}
		inj = chaos.New(spec)
		opts.FaultHook = inj.JobFault
		opts.SnapshotHook = func(data []byte) ([]byte, error) {
			return inj.MutateSnapshot(data, simcache.PoisonSnapshot), nil
		}
		logf("serve: chaos armed: %s", spec)
	}
	srv, err := engine.NewServer(opts)
	if err != nil {
		return err
	}
	if inj != nil {
		// Fired-fault tallies land on this process's /metrics, so a chaos
		// smoke can prove mid-run that faults actually fired.
		chaos.RegisterMetrics(srv.Metrics(), inj)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logf("serve: listening on http://%s (POST /v1/jobs)", ln.Addr())
	if *announce != "" {
		// Atomic write: a spawner polling the file never reads a torn
		// address.
		tmp := *announce + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *announce); err != nil {
			return err
		}
	}

	// Graceful drain: stop accepting, let queued and running jobs finish,
	// persist the warm cache, then exit. A second signal aborts.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigCh:
		logf("serve: %v: draining (%d queued); signal again to abort", sig, srv.QueueLen())
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	go func() {
		<-sigCh
		logf("serve: second signal: aborting drain")
		cancel()
	}()
	if err := srv.Drain(ctx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutdownCancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
