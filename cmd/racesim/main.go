// Command racesim runs a single workload through a simulator configuration
// and prints the timing result — the equivalent of one Sniper run.
//
// Usage:
//
//	racesim -preset public-a53 -ubench MD
//	racesim -preset public-a72 -workload mcf -events 200000
//	racesim -config tuned.json -workload povray
//	racesim -preset public-a53 -trace path.rift
package main

import (
	"flag"
	"fmt"
	"os"

	"racesim/internal/sim"
	"racesim/internal/trace"
	"racesim/internal/ubench"
	"racesim/internal/workload"
)

func main() {
	var (
		preset    = flag.String("preset", "public-a53", "built-in config: public-a53 or public-a72")
		cfgPath   = flag.String("config", "", "JSON config file (overrides -preset)")
		benchName = flag.String("ubench", "", "micro-benchmark name (Table I)")
		wlName    = flag.String("workload", "", "SPEC-like workload name (Table II)")
		trPath    = flag.String("trace", "", "RIFT trace file to replay")
		events    = flag.Int("events", 100_000, "workload trace length")
		scale     = flag.Float64("scale", 0.01, "micro-benchmark scale factor")
		seed      = flag.Int64("seed", 0, "workload generator seed")
	)
	flag.Parse()
	if err := run(*preset, *cfgPath, *benchName, *wlName, *trPath, *events, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "racesim:", err)
		os.Exit(1)
	}
}

func run(preset, cfgPath, benchName, wlName, trPath string, events int, scale float64, seed int64) error {
	var cfg sim.Config
	switch {
	case cfgPath != "":
		var err error
		cfg, err = sim.LoadConfig(cfgPath)
		if err != nil {
			return err
		}
	case preset == "public-a53":
		cfg = sim.PublicA53()
	case preset == "public-a72":
		cfg = sim.PublicA72()
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}

	var tr *trace.Trace
	switch {
	case benchName != "":
		b, ok := ubench.ByName(benchName)
		if !ok {
			return fmt.Errorf("unknown micro-benchmark %q (see cmd/ubench -list)", benchName)
		}
		var err error
		tr, err = b.Trace(ubench.Options{Scale: scale})
		if err != nil {
			return err
		}
	case wlName != "":
		p, ok := workload.ByName(wlName)
		if !ok {
			return fmt.Errorf("unknown workload %q", wlName)
		}
		var err error
		tr, err = workload.Generate(p, workload.Options{Events: events, Seed: seed})
		if err != nil {
			return err
		}
	case trPath != "":
		var err error
		tr, err = trace.ReadFile(trPath)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -ubench, -workload or -trace is required")
	}

	res, err := cfg.Run(tr)
	if err != nil {
		return err
	}
	fmt.Printf("config:        %s (%s)\n", cfg.Name, cfg.Kind)
	fmt.Printf("trace:         %s (%d instructions)\n", tr.Name, tr.Len())
	fmt.Printf("cycles:        %d\n", res.Cycles)
	fmt.Printf("CPI:           %.4f   (IPC %.4f)\n", res.CPI(), res.IPC())
	fmt.Printf("branch MPKI:   %.2f   (mispredicts %d)\n",
		res.Branch.MPKI(res.Instructions), res.Branch.Mispredicts())
	fmt.Printf("L1D miss rate: %.2f%%  L2 miss rate: %.2f%%\n",
		res.Mem.L1D.MissRate()*100, res.Mem.L2.MissRate()*100)
	fmt.Printf("stalls:        front-end %d, data %d, structural %d cycles\n",
		res.StallFrontEnd, res.StallData, res.StallStruct)
	return nil
}
