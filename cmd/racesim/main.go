// Command racesim runs workloads through a simulator configuration and
// prints the timing result — the equivalent of one (or a batch of) Sniper
// runs.
//
// Usage:
//
//	racesim -preset public-a53 -ubench MD
//	racesim -preset public-a72 -workload mcf -events 200000
//	racesim -config tuned.json -workload povray
//	racesim -preset public-a53 -trace path.rift
//	racesim -preset public-a53 -ubench all -parallelism 8
//	racesim -preset public-a53 -workload mcf,xz,povray -cache simcache.json
//
// -ubench and -workload accept a single name, a comma-separated list, or
// "all". A single trace prints the detailed counter breakdown; a batch
// prints one summary row per trace, in listed order regardless of
// -parallelism. -cache persists simulation results across invocations.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"racesim/internal/expt"
	"racesim/internal/par"
	"racesim/internal/prof"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/trace"
	"racesim/internal/ubench"
	"racesim/internal/workload"
)

func main() {
	var (
		preset      = flag.String("preset", "public-a53", "built-in config: public-a53 or public-a72")
		cfgPath     = flag.String("config", "", "JSON config file (overrides -preset)")
		benchNames  = flag.String("ubench", "", "micro-benchmark name(s), comma-separated, or \"all\" (Table I)")
		wlNames     = flag.String("workload", "", "SPEC-like workload name(s), comma-separated, or \"all\" (Table II)")
		trPath      = flag.String("trace", "", "RIFT trace file to replay")
		events      = flag.Int("events", 100_000, "workload trace length")
		scale       = flag.Float64("scale", 0.01, "micro-benchmark scale factor")
		seed        = flag.Int64("seed", 0, "workload generator seed")
		parallelism = flag.Int("parallelism", 0, "concurrent simulations for batches (0 = GOMAXPROCS)")
		cachePath   = flag.String("cache", "", "JSON file persisting the simulation cache across runs")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()
	err := prof.Run(*cpuprofile, *memprofile, func() error {
		return run(*preset, *cfgPath, *benchNames, *wlNames, *trPath, *events, *scale, *seed, *parallelism, *cachePath)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "racesim:", err)
		os.Exit(1)
	}
}

// expand resolves a comma-separated name list, where "all" selects every
// known name (in canonical order).
func expand(arg string, all []string) []string {
	if arg == "all" {
		return all
	}
	var out []string
	for _, n := range strings.Split(arg, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func gather(benchArg, wlArg, trPath string, events int, scale float64, seed int64,
	parallelism int) ([]*trace.Trace, error) {
	// Resolve names first (cheap, gives immediate errors), then generate
	// the traces on the worker pool: emulation dominates batch startup.
	var producers []func() (*trace.Trace, error)
	if benchArg != "" {
		var names []string
		for _, b := range ubench.Suite() {
			names = append(names, b.Name)
		}
		for _, n := range expand(benchArg, names) {
			b, ok := ubench.ByName(n)
			if !ok {
				return nil, fmt.Errorf("unknown micro-benchmark %q (see cmd/ubench -list)", n)
			}
			producers = append(producers, func() (*trace.Trace, error) {
				return b.Trace(ubench.Options{Scale: scale})
			})
		}
	}
	if wlArg != "" {
		var names []string
		for _, p := range workload.Profiles() {
			names = append(names, p.Name)
		}
		for _, n := range expand(wlArg, names) {
			p, ok := workload.ByName(n)
			if !ok {
				return nil, fmt.Errorf("unknown workload %q", n)
			}
			producers = append(producers, func() (*trace.Trace, error) {
				return workload.Generate(p, workload.Options{Events: events, Seed: seed})
			})
		}
	}
	if trPath != "" {
		producers = append(producers, func() (*trace.Trace, error) {
			return trace.ReadFile(trPath)
		})
	}
	if len(producers) == 0 {
		return nil, fmt.Errorf("one of -ubench, -workload or -trace is required")
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	trs := make([]*trace.Trace, len(producers))
	err := par.ForEach(len(producers), parallelism, func(i int) error {
		tr, err := producers[i]()
		if err != nil {
			return err
		}
		trs[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return trs, nil
}

func run(preset, cfgPath, benchArg, wlArg, trPath string, events int, scale float64, seed int64,
	parallelism int, cachePath string) error {
	var cfg sim.Config
	switch {
	case cfgPath != "":
		var err error
		cfg, err = sim.LoadConfig(cfgPath)
		if err != nil {
			return err
		}
	case preset == "public-a53":
		cfg = sim.PublicA53()
	case preset == "public-a72":
		cfg = sim.PublicA72()
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}

	trs, err := gather(benchArg, wlArg, trPath, events, scale, seed, parallelism)
	if err != nil {
		return err
	}

	cache := simcache.New()
	if cachePath != "" {
		if err := simcache.ValidatePath(cachePath); err != nil {
			return err
		}
		if _, err := cache.LoadFile(cachePath); err != nil {
			return err
		}
	}
	runner := expt.NewRunner(cache, parallelism)
	units := make([]expt.Unit, len(trs))
	for i, tr := range trs {
		units[i] = expt.Unit{Config: cfg, Trace: tr}
	}
	results, err := runner.RunAll(units)
	if err != nil {
		return err
	}

	if len(trs) == 1 {
		tr, res := trs[0], results[0]
		fmt.Printf("config:        %s (%s)\n", cfg.Name, cfg.Kind)
		fmt.Printf("trace:         %s (%d instructions)\n", tr.Name, tr.Len())
		fmt.Printf("cycles:        %d\n", res.Cycles)
		fmt.Printf("CPI:           %.4f   (IPC %.4f)\n", res.CPI(), res.IPC())
		fmt.Printf("branch MPKI:   %.2f   (mispredicts %d)\n",
			res.Branch.MPKI(res.Instructions), res.Branch.Mispredicts())
		fmt.Printf("L1D miss rate: %.2f%%  L2 miss rate: %.2f%%\n",
			res.Mem.L1D.MissRate()*100, res.Mem.L2.MissRate()*100)
		fmt.Printf("stalls:        front-end %d, data %d, structural %d cycles\n",
			res.StallFrontEnd, res.StallData, res.StallStruct)
	} else {
		t := &expt.Table{
			Title:   fmt.Sprintf("%s (%s): %d traces", cfg.Name, cfg.Kind, len(trs)),
			Headers: []string{"trace", "insns", "cycles", "CPI", "br MPKI", "L1D miss", "L2 miss"},
		}
		for i, tr := range trs {
			res := results[i]
			t.AddRow(tr.Name, fmt.Sprintf("%d", tr.Len()), fmt.Sprintf("%d", res.Cycles),
				fmt.Sprintf("%.4f", res.CPI()),
				fmt.Sprintf("%.2f", res.Branch.MPKI(res.Instructions)),
				fmt.Sprintf("%.2f%%", res.Mem.L1D.MissRate()*100),
				fmt.Sprintf("%.2f%%", res.Mem.L2.MissRate()*100))
		}
		fmt.Print(t.Render())
	}

	if cachePath != "" {
		st := cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses (%.1f%% hit rate)\n",
			st.Hits, st.Misses, st.HitRate()*100)
		if err := cache.SaveFile(cachePath); err != nil {
			return err
		}
	}
	return nil
}
