// Package racesim is the public API of the racesim library: a
// hardware-validated processor-simulation toolkit reproducing "Racing to
// Hardware-Validated Simulation" (Adileh et al., ISPASS 2019).
//
// The library bundles:
//
//   - a trace-driven processor simulator with in-order (Cortex-A53 class)
//     and out-of-order (Cortex-A72 class) timing models, configurable
//     branch prediction, cache hierarchy, prefetching and contention
//     models (packages internal/core, internal/cache, internal/branch);
//   - a front-end substrate: an AArch64-like ISA, assembler, functional
//     emulator and SIFT-style trace format (internal/isa, internal/asm,
//     internal/emu, internal/trace);
//   - the 40 targeted micro-benchmarks of the paper's Table I and
//     synthetic SPEC CPU2017-like workloads of Table II (internal/ubench,
//     internal/workload);
//   - an iterated-racing tuner and the full validation methodology
//     (internal/irace, internal/validate), plus the near-optimum
//     sensitivity study (internal/perturb);
//   - a reference "hardware" board with a hidden ground-truth
//     configuration standing in for the paper's Firefly RK3399
//     (internal/hw) and lmbench-style latency probes (internal/lmbench).
//
// This facade re-exports the types and constructors a downstream user
// needs; the examples/ directory shows complete programs.
package racesim

import (
	"racesim/internal/expt"
	"racesim/internal/hw"
	"racesim/internal/irace"
	"racesim/internal/perturb"
	"racesim/internal/sim"
	"racesim/internal/simcache"
	"racesim/internal/trace"
	"racesim/internal/ubench"
	"racesim/internal/validate"
	"racesim/internal/workload"
)

// Core simulator configuration and execution.
type (
	// Config fully describes a simulated core (see sim.Config).
	Config = sim.Config
	// CoreKind selects the timing model ("inorder" or "ooo").
	CoreKind = sim.CoreKind
	// Trace is a recorded dynamic instruction stream.
	Trace = trace.Trace
)

// Core kinds.
const (
	InOrder    = sim.InOrder
	OutOfOrder = sim.OutOfOrder
)

// Public model presets (methodology steps 1-3).
var (
	PublicA53 = sim.PublicA53
	PublicA72 = sim.PublicA72
)

// LoadConfig reads and validates a JSON configuration.
var LoadConfig = sim.LoadConfig

// Reference hardware.
type (
	// Board is one measurable core of the reference platform.
	Board = hw.Board
	// Counters is the perf-style measurement result.
	Counters = hw.Counters
	// Platform is the two-core reference board.
	Platform = hw.Platform
)

// Firefly returns the RK3399-like reference platform.
var Firefly = hw.Firefly

// Micro-benchmarks (Table I).
type (
	// Bench is one targeted micro-benchmark.
	Bench = ubench.Bench
	// BenchOptions parameterizes micro-benchmark generation.
	BenchOptions = ubench.Options
)

// Suite returns the 40 Table I micro-benchmarks.
var Suite = ubench.Suite

// BenchByName finds a Table I micro-benchmark.
var BenchByName = ubench.ByName

// Workloads (Table II).
type (
	// WorkloadProfile characterizes one SPEC-like benchmark.
	WorkloadProfile = workload.Profile
	// WorkloadOptions parameterizes synthesis.
	WorkloadOptions = workload.Options
)

// Workloads returns the Table II profiles.
var Workloads = workload.Profiles

// GenerateWorkload synthesizes a workload trace.
var GenerateWorkload = workload.Generate

// Validation methodology.
type (
	// Measurement is one tuning instance (trace + board counters).
	Measurement = validate.Measurement
	// TuneOptions configures a tuning round.
	TuneOptions = validate.TuneOptions
	// TuneResult is a tuning round's outcome.
	TuneResult = validate.TuneResult
	// StageResult is one stage of the staged pipeline.
	StageResult = validate.StageResult
	// PipelineOptions configures the full methodology run.
	PipelineOptions = validate.PipelineOptions
	// Assignment maps tunable parameter names to values.
	Assignment = irace.Assignment
)

// Methodology entry points.
var (
	// MeasureSuite records and measures all micro-benchmarks once.
	MeasureSuite = validate.MeasureSuite
	// Tune runs one iterated-racing round (methodology step 4).
	Tune = validate.Tune
	// Pipeline runs the complete Figure 1 flow.
	Pipeline = validate.Pipeline
	// SpaceFor returns the tunable-parameter space for a core kind.
	SpaceFor = sim.Space
	// ApplyAssignment overlays tuned parameters onto a base config.
	ApplyAssignment = sim.Apply
	// ExtractAssignment reads the tunables out of a config.
	ExtractAssignment = sim.Extract
)

// Sensitivity study (Figures 7-8).
type (
	// PerturbWorkload pairs an evaluation trace with board counters.
	PerturbWorkload = perturb.Workload
	// PerturbOptions configures the worst-case search.
	PerturbOptions = perturb.Options
	// PerturbResult is the worst near-optimum configuration found.
	PerturbResult = perturb.Result
)

// WorstNearOptimum searches single-step deviations for the worst model.
var WorstNearOptimum = perturb.WorstNearOptimum

// Experiments harness (tables and figures of the paper).
type (
	// Experiment couples a regenerated artifact with the paper's claim.
	Experiment = expt.Experiment
	// ExperimentOptions sizes experiment runs.
	ExperimentOptions = expt.Options
	// ExperimentContext caches artifacts across experiments.
	ExperimentContext = expt.Context
	// SimUnit is one independent (config, trace) simulation.
	SimUnit = expt.Unit
	// SimRunner schedules simulation units on a bounded worker pool.
	SimRunner = expt.Runner
	// SimCache memoizes simulation results across experiments and runs.
	SimCache = simcache.Cache
	// SimCacheStats snapshots cache effectiveness.
	SimCacheStats = simcache.Stats
)

// NewExperiments builds an experiment context.
var NewExperiments = expt.NewContext

// NewSimCache returns an empty in-memory simulation cache; see
// SimCache.LoadFile/SaveFile for cross-process persistence.
var NewSimCache = simcache.New

// NewSimRunner builds a parallel simulation runner over an optional cache.
var NewSimRunner = expt.NewRunner

// ExperimentIDs lists every experiment in paper order.
var ExperimentIDs = expt.IDs
